//! The live subsystem's handles into the process-wide metric registry.
//!
//! Three handle sets, each resolved once into a `OnceLock` so hot paths (and
//! code holding the epoch manager's or writer's `Mutex`) record through
//! lock-free `Arc` handles only:
//!
//! * [`live_metrics`] — batch ingestion and incremental refresh
//!   (`tpath_live_*`): apply latency, mutation counts, refresh latency, the
//!   delta-vs-full-fallback split, rows added/retracted.
//! * [`epoch_metrics`] — the MVCC epoch protocol (`tpath_epoch_*`): publish /
//!   retire counters, retained-snapshot and pinned-reader gauges.  Recorded
//!   inside the manager's protocol lock, which is safe precisely because
//!   recording never takes a lock (pinned by the lock-freedom tests).
//! * [`serve_metrics`] — the query server (`tpath_serve_*`): per-request
//!   end-to-end and queue-wait histograms, per-answer-mode request counters,
//!   worker-utilization and queue-depth gauges, and the writer-starvation
//!   gauge (nanoseconds the last ingest waited for the writer lock).

use std::sync::{Arc, OnceLock};

use obs::{Counter, Gauge, Histogram};

/// Ingestion and refresh metrics (`tpath_live_*`).
#[derive(Debug)]
pub(crate) struct LiveMetrics {
    /// `tpath_live_batches_total` — batches applied.
    pub batches: Arc<Counter>,
    /// `tpath_live_mutations_total` — mutations across applied batches.
    pub mutations: Arc<Counter>,
    /// `tpath_live_apply_seconds` — batch apply latency.
    pub apply_seconds: Arc<Histogram>,
    /// `tpath_live_refreshes_total{kind="delta"}` — delta-seeded refreshes.
    pub refreshes_delta: Arc<Counter>,
    /// `tpath_live_refreshes_total{kind="full"}` — refreshes that fell back
    /// to full recomputation (`RefreshStats::fallback_full`); the ratio of
    /// the two series is the fallback rate.
    pub refreshes_full: Arc<Counter>,
    /// `tpath_live_refresh_seconds` — refresh latency.
    pub refresh_seconds: Arc<Histogram>,
    /// `tpath_live_refresh_rows_total{change="added"}`.
    pub rows_added: Arc<Counter>,
    /// `tpath_live_refresh_rows_total{change="retracted"}`.
    pub rows_retracted: Arc<Counter>,
}

/// Epoch protocol metrics (`tpath_epoch_*`).
#[derive(Debug)]
pub(crate) struct EpochMetrics {
    /// `tpath_epoch_published_total` — snapshots published.
    pub published: Arc<Counter>,
    /// `tpath_epoch_retired_total` — snapshots retired.
    pub retired: Arc<Counter>,
    /// `tpath_epoch_retained` — snapshots currently retained.
    pub retained: Arc<Gauge>,
    /// `tpath_epoch_pinned_readers` — pins currently held by readers.
    pub pinned_readers: Arc<Gauge>,
}

/// Query server metrics (`tpath_serve_*`).
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    /// `tpath_serve_requests_total{mode="registered"}`.
    pub req_registered: Arc<Counter>,
    /// `tpath_serve_requests_total{mode="full"}`.
    pub req_full: Arc<Counter>,
    /// `tpath_serve_requests_total{mode="compact"}`.
    pub req_compact: Arc<Counter>,
    /// `tpath_serve_requests_total{mode="enum"}`.
    pub req_enum: Arc<Counter>,
    /// `tpath_serve_requests_total{mode="metrics"}`.
    pub req_metrics: Arc<Counter>,
    /// `tpath_serve_request_seconds` — submit-to-response wall time.
    pub request_seconds: Arc<Histogram>,
    /// `tpath_serve_queue_wait_seconds` — submit-to-dequeue wall time.
    pub queue_wait_seconds: Arc<Histogram>,
    /// `tpath_serve_busy_workers` — workers currently executing a request.
    pub busy_workers: Arc<Gauge>,
    /// `tpath_serve_workers` — workers in the pool.
    pub workers: Arc<Gauge>,
    /// `tpath_serve_queue_depth` — requests submitted but not yet dequeued.
    pub queue_depth: Arc<Gauge>,
    /// `tpath_serve_writer_lock_wait_nanos` — nanoseconds the most recent
    /// ingest spent waiting for the writer lock (the writer-starvation
    /// signal: readers never take that lock, so any wait is writer-vs-writer
    /// contention with registrations or other ingests).
    pub writer_lock_wait_nanos: Arc<Gauge>,
    /// `tpath_serve_worker_panics_total` — requests whose worker panicked
    /// (the panic is contained; the worker keeps serving).
    pub worker_panics: Arc<Counter>,
}

pub(crate) fn live_metrics() -> &'static LiveMetrics {
    static METRICS: OnceLock<LiveMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        let refreshes_help = "Query refreshes, split by delta-seeded vs full-recompute fallback.";
        let rows_help = "Rows added to / retracted from maintained answers by refreshes.";
        LiveMetrics {
            batches: reg.counter("tpath_live_batches_total", "Mutation batches applied.", &[]),
            mutations: reg.counter(
                "tpath_live_mutations_total",
                "Mutations across applied batches.",
                &[],
            ),
            apply_seconds: reg.latency_histogram(
                "tpath_live_apply_seconds",
                "Batch apply latency (graph + relation delta + dirty marking).",
                &[],
            ),
            refreshes_delta: reg.counter(
                "tpath_live_refreshes_total",
                refreshes_help,
                &[("kind", "delta")],
            ),
            refreshes_full: reg.counter(
                "tpath_live_refreshes_total",
                refreshes_help,
                &[("kind", "full")],
            ),
            refresh_seconds: reg.latency_histogram(
                "tpath_live_refresh_seconds",
                "Incremental refresh latency per registered query.",
                &[],
            ),
            rows_added: reg.counter(
                "tpath_live_refresh_rows_total",
                rows_help,
                &[("change", "added")],
            ),
            rows_retracted: reg.counter(
                "tpath_live_refresh_rows_total",
                rows_help,
                &[("change", "retracted")],
            ),
        }
    })
}

pub(crate) fn epoch_metrics() -> &'static EpochMetrics {
    static METRICS: OnceLock<EpochMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        EpochMetrics {
            published: reg.counter(
                "tpath_epoch_published_total",
                "Epoch snapshots published (ingests and registrations).",
                &[],
            ),
            retired: reg.counter(
                "tpath_epoch_retired_total",
                "Epoch snapshots retired after their last reader unpinned.",
                &[],
            ),
            retained: reg.gauge(
                "tpath_epoch_retained",
                "Epoch snapshots currently retained (current plus pinned).",
                &[],
            ),
            pinned_readers: reg.gauge(
                "tpath_epoch_pinned_readers",
                "Pins currently held by readers, across all retained epochs.",
                &[],
            ),
        }
    })
}

pub(crate) fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        let req_help = "Requests served, by answer mode.";
        let req = |mode: &'static str| {
            reg.counter("tpath_serve_requests_total", req_help, &[("mode", mode)])
        };
        ServeMetrics {
            req_registered: req("registered"),
            req_full: req("full"),
            req_compact: req("compact"),
            req_enum: req("enum"),
            req_metrics: req("metrics"),
            request_seconds: reg.latency_histogram(
                "tpath_serve_request_seconds",
                "End-to-end request latency, submit to response.",
                &[],
            ),
            queue_wait_seconds: reg.latency_histogram(
                "tpath_serve_queue_wait_seconds",
                "Time a request waited in the queue before a worker dequeued it.",
                &[],
            ),
            busy_workers: reg.gauge(
                "tpath_serve_busy_workers",
                "Workers currently executing a request.",
                &[],
            ),
            workers: reg.gauge("tpath_serve_workers", "Workers in the pool.", &[]),
            queue_depth: reg.gauge(
                "tpath_serve_queue_depth",
                "Requests submitted but not yet dequeued by a worker.",
                &[],
            ),
            writer_lock_wait_nanos: reg.gauge(
                "tpath_serve_writer_lock_wait_nanos",
                "Nanoseconds the most recent ingest waited for the writer lock \
                 (writer-starvation signal).",
                &[],
            ),
            worker_panics: reg.counter(
                "tpath_serve_worker_panics_total",
                "Requests whose worker panicked (contained; the worker keeps serving).",
                &[],
            ),
        }
    })
}
