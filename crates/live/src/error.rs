//! Errors of the live-graph subsystem.

use std::fmt;

/// Errors produced while ingesting batches into or registering queries on a
/// [`crate::LiveGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum LiveError {
    /// A batch failed graph-level validation (unknown names, dangling edges,
    /// properties outside existence, …).  The graph is left unmodified.
    Graph(tgraph::GraphError),
    /// A registered query failed to parse or compile.
    Query(trpq::QueryError),
    /// A batch arrived with an epoch not strictly greater than the last applied
    /// one.  The delta log is append-only; epochs must increase.
    NonMonotonicEpoch {
        /// The epoch of the last applied batch.
        last: u64,
        /// The offending epoch.
        got: u64,
    },
    /// A serve request referenced a registered query the pinned epoch does not
    /// know about (the id was never issued, or the query was registered after
    /// the epoch was published).
    UnknownQuery(crate::query::LiveQueryId),
    /// The query server shut down before producing a response.
    ServerClosed,
    /// A worker thread panicked while executing the request.  The panic is
    /// contained: the worker keeps serving and other requests are unaffected.
    /// Carries the panic payload rendered as text.
    WorkerPanicked(String),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Graph(e) => write!(f, "batch rejected: {e}"),
            LiveError::Query(e) => write!(f, "query rejected: {e}"),
            LiveError::NonMonotonicEpoch { last, got } => {
                write!(f, "batch epoch {got} is not greater than the last applied epoch {last}")
            }
            LiveError::UnknownQuery(id) => {
                write!(f, "no registered query {id:?} in the pinned epoch")
            }
            LiveError::ServerClosed => write!(f, "the query server shut down before responding"),
            LiveError::WorkerPanicked(message) => {
                write!(f, "a server worker panicked while executing the request: {message}")
            }
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Graph(e) => Some(e),
            LiveError::Query(e) => Some(e),
            LiveError::NonMonotonicEpoch { .. }
            | LiveError::UnknownQuery(_)
            | LiveError::ServerClosed
            | LiveError::WorkerPanicked(_) => None,
        }
    }
}

impl From<tgraph::GraphError> for LiveError {
    fn from(e: tgraph::GraphError) -> Self {
        LiveError::Graph(e)
    }
}

impl From<trpq::QueryError> for LiveError {
    fn from(e: trpq::QueryError) -> Self {
        LiveError::Query(e)
    }
}
