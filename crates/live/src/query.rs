//! Maintained query state: per-plan result caches, delta-seeded refresh, and the
//! statistics a refresh reports.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use dataflow::Parallelism;
use engine::bindings::{Binding, BindingTable};
use engine::plan::{EnginePlan, PlanSet};
use engine::steps::expand::expand_chains;
use engine::steps::StepStats;
use engine::{run_plan_seeded, GraphRelations, JoinStrategy};
use tgraph::{Interval, Itpg, NodeId, Object};

/// Handle to a query registered on a [`crate::LiveGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LiveQueryId(pub(crate) usize);

/// What one refresh of a maintained query did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshStats {
    /// The epoch of the last batch folded into this refresh, if any batch has
    /// ever been applied.
    pub epoch: Option<u64>,
    /// Binding-table rows added relative to the previous maintained answer.
    pub rows_added: usize,
    /// Binding-table rows retracted relative to the previous maintained answer.
    pub rows_retracted: usize,
    /// Rows of the maintained answer after the refresh.
    pub output_rows: usize,
    /// Seed nodes whose results were recomputed by delta seeding (0 when every
    /// plan either fell back to a full recompute or was untouched).
    pub affected_seeds: usize,
    /// True if at least one plan alternative was recomputed from every seed —
    /// the conservative fallback taken for plans whose reach is not statically
    /// bounded (closure fixpoints).
    pub fallback_full: bool,
    /// Structural-closure fixpoint rounds executed during the refresh.
    pub closure_rounds: usize,
    /// Time-aware-closure fixpoint rounds executed during the refresh.
    pub time_rounds: usize,
    /// Wall-clock time of the refresh.
    pub duration: Duration,
}

/// One plan alternative's cached results.
#[derive(Debug, Clone)]
struct PlanCache {
    /// Static execution bounds of the (immutable) plan, computed once at
    /// registration by the semantic analyzer ([`engine::static_bounds`]) rather
    /// than re-derived on every refresh.  `max_hops` decides the refresh path:
    /// a bounded plan is delta-seeded from the affected neighbourhood, an
    /// unbounded one falls back to a full recompute.
    bounds: engine::PlanBounds,
    /// The domain `bounds` was computed against.  The closure iteration bound
    /// depends on the domain span, so a delta that widens the domain
    /// invalidates the cached bounds (they are recomputed on the next
    /// refresh); any other delta leaves them valid forever.
    bounds_domain: Interval,
    /// Expanded binding rows grouped by seed node (incremental plans).
    by_seed: BTreeMap<u32, Vec<Vec<Binding>>>,
    /// Expanded binding rows of the whole plan (fallback plans).
    full: Vec<Vec<Binding>>,
}

/// The hop radius delta seeding may rely on, if any: the analyzer's bound,
/// capped by the audit's [`engine::plan::audit::MAX_STATIC_HOPS`] so a huge
/// (technically finite) bound cannot turn one refresh into a whole-graph
/// breadth-first sweep that costs more than the full recompute it avoids.
fn seeding_hops(bounds: &engine::PlanBounds) -> Option<usize> {
    bounds.max_hops.filter(|&h| h <= engine::plan::audit::MAX_STATIC_HOPS)
}

/// A registered query: its compiled plan set plus the maintained answer.
///
/// The answer table lives behind an [`Arc`] so MVCC snapshots
/// ([`crate::epoch::EpochSnapshot`]) can retain the epoch's answer without
/// copying rows: a refresh builds the next table and swaps the handle, leaving
/// pinned readers on the old one.
#[derive(Debug, Clone)]
pub(crate) struct QueryState {
    plan_set: PlanSet,
    plans: Vec<PlanCache>,
    table: Arc<BindingTable>,
    /// Objects touched by batches applied since the last refresh.
    pending: BTreeSet<Object>,
}

impl QueryState {
    /// Compiles the initial state of a registered query: a full evaluation of
    /// every plan, cached per seed node for the incremental alternatives.
    pub(crate) fn build(
        plan_set: PlanSet,
        graph: &GraphRelations,
        parallelism: Parallelism,
        strategy: JoinStrategy,
    ) -> Self {
        let step_stats = StepStats::default();
        let num_slots = plan_set.variables.len();
        let seeds = graph.seed_rows();
        let mut plans = Vec::with_capacity(plan_set.plans.len());
        for plan in &plan_set.plans {
            let bounds = engine::static_bounds(plan, graph.domain());
            let chains = run_plan_seeded(plan, graph, &seeds, parallelism, strategy, &step_stats);
            let mut cache = PlanCache {
                bounds,
                bounds_domain: graph.domain(),
                by_seed: BTreeMap::new(),
                full: Vec::new(),
            };
            match seeding_hops(&bounds) {
                Some(_) => {
                    for (node, group) in group_by_seed_node(graph, chains) {
                        let rows = expand_group(plan, &plan_set.variables, num_slots, &group);
                        if !rows.is_empty() {
                            cache.by_seed.insert(node, rows);
                        }
                    }
                }
                None => {
                    cache.full = expand_group(plan, &plan_set.variables, num_slots, &chains);
                }
            }
            plans.push(cache);
        }
        let mut state = QueryState {
            plan_set,
            plans,
            table: Arc::new(BindingTable::default()),
            pending: BTreeSet::new(),
        };
        state.table = Arc::new(state.assemble());
        state
    }

    pub(crate) fn plan_set(&self) -> &PlanSet {
        &self.plan_set
    }

    pub(crate) fn table(&self) -> &BindingTable {
        &self.table
    }

    /// A shared handle to the maintained answer as of the last refresh —
    /// what epoch snapshots retain.
    pub(crate) fn table_handle(&self) -> Arc<BindingTable> {
        Arc::clone(&self.table)
    }

    pub(crate) fn note_touched(&mut self, touched: &[Object]) {
        self.pending.extend(touched.iter().copied());
    }

    /// Folds every pending delta into the maintained answer.
    pub(crate) fn refresh(
        &mut self,
        itpg: &Itpg,
        graph: &GraphRelations,
        parallelism: Parallelism,
        strategy: JoinStrategy,
        epoch: Option<u64>,
    ) -> RefreshStats {
        let started = obs::Stopwatch::start();
        let mut stats = RefreshStats { epoch, ..Default::default() };
        if self.pending.is_empty() {
            stats.output_rows = self.table.len();
            stats.duration = started.elapsed();
            return stats;
        }
        let touched: BTreeSet<Object> = std::mem::take(&mut self.pending);
        let step_stats = StepStats::default();
        let num_slots = self.plan_set.variables.len();
        for (plan, cache) in self.plan_set.plans.iter().zip(&mut self.plans) {
            if cache.bounds_domain != graph.domain() {
                // The domain widened since the bounds were cached; the closure
                // iteration bound scales with the domain span, so refresh it.
                cache.bounds = engine::static_bounds(plan, graph.domain());
                cache.bounds_domain = graph.domain();
            }
            match seeding_hops(&cache.bounds) {
                None => {
                    // Conservative fallback: the closure's reach is unbounded
                    // (or the bound exceeds the sweep cap), so recompute this
                    // alternative from every live seed.  A widening domain can
                    // push a previously-bounded plan onto this path, so the
                    // per-seed cache is superseded wholesale.
                    stats.fallback_full = true;
                    cache.by_seed.clear();
                    let chains = run_plan_seeded(
                        plan,
                        graph,
                        &graph.seed_rows(),
                        parallelism,
                        strategy,
                        &step_stats,
                    );
                    cache.full = expand_group(plan, &self.plan_set.variables, num_slots, &chains);
                }
                Some(hops) => {
                    let affected = affected_nodes(itpg, &touched, hops);
                    stats.affected_seeds += affected.len();
                    let mut seeds: Vec<u32> = affected
                        .iter()
                        .flat_map(|&n| graph.rows_of_node(n).iter().copied())
                        .collect();
                    seeds.sort_unstable();
                    let chains =
                        run_plan_seeded(plan, graph, &seeds, parallelism, strategy, &step_stats);
                    let mut recomputed = group_by_seed_node(graph, chains);
                    for &node in &affected {
                        let rows = match recomputed.remove(&node.0) {
                            Some(group) => {
                                expand_group(plan, &self.plan_set.variables, num_slots, &group)
                            }
                            None => Vec::new(),
                        };
                        if rows.is_empty() {
                            cache.by_seed.remove(&node.0);
                        } else {
                            cache.by_seed.insert(node.0, rows);
                        }
                    }
                    debug_assert!(recomputed.is_empty(), "chains from unrequested seeds");
                }
            }
        }
        let next = self.assemble();
        let (added, retracted) = diff_sorted(self.table.rows(), next.rows());
        stats.rows_added = added;
        stats.rows_retracted = retracted;
        stats.output_rows = next.len();
        stats.closure_rounds = step_stats.closure_rounds.load(Ordering::Relaxed);
        stats.time_rounds = step_stats.time_closure_rounds.load(Ordering::Relaxed);
        self.table = Arc::new(next);
        stats.duration = started.elapsed();
        stats
    }

    /// Concatenates every cached row group into the canonical (sorted,
    /// deduplicated) binding table — the same canonical form
    /// [`engine::execute`] produces.
    fn assemble(&self) -> BindingTable {
        let mut table = BindingTable::new(self.plan_set.variables.clone());
        for cache in &self.plans {
            for rows in cache.by_seed.values() {
                table.extend_rows(rows.iter().cloned());
            }
            table.extend_rows(cache.full.iter().cloned());
        }
        table.sort_dedup();
        table
    }
}

/// Groups chains by the node their seed row belongs to.
fn group_by_seed_node(
    graph: &GraphRelations,
    chains: Vec<engine::chain::Chain>,
) -> BTreeMap<u32, Vec<engine::chain::Chain>> {
    let mut grouped: BTreeMap<u32, Vec<engine::chain::Chain>> = BTreeMap::new();
    for chain in chains {
        let node = graph.node_rows()[chain.seed as usize].node.0;
        grouped.entry(node).or_default().push(chain);
    }
    grouped
}

/// Step 3 for one group of chains: expansion into (unsorted) binding rows.
fn expand_group(
    plan: &EnginePlan,
    variables: &[String],
    num_slots: usize,
    chains: &[engine::chain::Chain],
) -> Vec<Vec<Binding>> {
    let mut partial = BindingTable::new(variables.to_vec());
    expand_chains(plan, num_slots, chains, &mut partial);
    partial.into_rows()
}

/// The nodes whose seeds a delta touching `touched` can have affected, for a
/// plan performing at most `hops` structural hops: a breadth-first sweep of the
/// bipartite object graph (nodes ↔ incident edges, one hop per step) to depth
/// `hops` from every touched object.
///
/// Correctness: a chain visits objects in hop order, so any chain observing a
/// touched object within its first `hops` hops starts within `hops` object-graph
/// steps of it; adjacency only ever grows, so a sweep over the *current* graph
/// covers derivations of the old graph too.
fn affected_nodes(itpg: &Itpg, touched: &BTreeSet<Object>, hops: usize) -> BTreeSet<NodeId> {
    let mut visited: BTreeSet<Object> = touched.clone();
    let mut frontier: Vec<Object> = touched.iter().copied().collect();
    for _ in 0..hops {
        let mut next: Vec<Object> = Vec::new();
        for &object in &frontier {
            match object {
                Object::Node(n) => {
                    for &e in itpg.out_edges(n).iter().chain(itpg.in_edges(n).iter()) {
                        let adjacent = Object::Edge(e);
                        if visited.insert(adjacent) {
                            next.push(adjacent);
                        }
                    }
                }
                Object::Edge(e) => {
                    for n in [itpg.src(e), itpg.tgt(e)] {
                        let adjacent = Object::Node(n);
                        if visited.insert(adjacent) {
                            next.push(adjacent);
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    visited.into_iter().filter_map(Object::as_node).collect()
}

/// Counts the rows added and retracted between two sorted, deduplicated row
/// lists with a single linear merge.
fn diff_sorted(old: &[Vec<Binding>], new: &[Vec<Binding>]) -> (usize, usize) {
    let (mut added, mut retracted) = (0usize, 0usize);
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                retracted += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    retracted += old.len() - i;
    added += new.len() - j;
    (added, retracted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::plan::{HopDirection, MicroOp, ObjFilter, Segment, Shift, TemporalLink};

    #[test]
    fn cached_bounds_pick_the_refresh_path() {
        let domain = Interval::of(0, 10);
        let hop = MicroOp::Hop(HopDirection::Forward);
        let filter = MicroOp::Filter(ObjFilter::default());
        let plain = EnginePlan {
            segments: vec![Segment { ops: vec![filter.clone(), hop.clone(), hop.clone()] }],
            links: vec![],
        };
        assert_eq!(seeding_hops(&engine::static_bounds(&plain, domain)), Some(2));
        let shifted = EnginePlan {
            segments: vec![Segment { ops: vec![hop.clone()] }, Segment { ops: vec![hop.clone()] }],
            links: vec![TemporalLink::Shift(Shift { forward: true, min: 0, max: None })],
        };
        assert_eq!(seeding_hops(&engine::static_bounds(&shifted, domain)), Some(2));
        // An unbounded structural closure keeps the conservative full path.
        let closure = engine::plan::ClosureOp::structural(vec![vec![hop.clone()]], 0, None);
        let with_closure = EnginePlan {
            segments: vec![Segment { ops: vec![MicroOp::Closure(closure)] }],
            links: vec![],
        };
        assert_eq!(seeding_hops(&engine::static_bounds(&with_closure, domain)), None);
        // A time-advancing closure is span-bounded — delta seeding applies...
        let advancing = engine::plan::ClosureOp {
            alternatives: vec![vec![
                engine::plan::ClosureStep::Micro(hop.clone()),
                engine::plan::ClosureStep::Micro(hop.clone()),
                engine::plan::ClosureStep::Shift(Shift { forward: true, min: 1, max: Some(1) }),
            ]],
            min: 0,
            max: None,
        };
        let with_time_closure = EnginePlan {
            segments: vec![Segment::default(), Segment::default()],
            links: vec![TemporalLink::Closure(advancing.clone())],
        };
        assert_eq!(seeding_hops(&engine::static_bounds(&with_time_closure, domain)), Some(20));
        // ...until the domain is so wide that the sweep would dwarf the
        // recompute it replaces.
        let wide = Interval::of(0, 100_000);
        assert_eq!(seeding_hops(&engine::static_bounds(&with_time_closure, wide)), None);
    }

    #[test]
    fn sorted_diff_counts_additions_and_retractions() {
        let row = |object: u32, t: u64| vec![Binding::at_point(Object::Node(NodeId(object)), t)];
        let old = vec![row(0, 1), row(1, 2), row(2, 3)];
        let new = vec![row(0, 1), row(1, 5), row(2, 3), row(3, 4)];
        assert_eq!(diff_sorted(&old, &new), (2, 1));
        assert_eq!(diff_sorted(&old, &old), (0, 0));
        assert_eq!(diff_sorted(&[], &old), (3, 0));
        assert_eq!(diff_sorted(&old, &[]), (0, 3));
    }
}
