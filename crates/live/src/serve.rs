//! Concurrent query serving: a single-writer [`ServeGraph`] publishing MVCC
//! epochs and a worker-pool [`Server`] answering queries against pinned
//! snapshots.
//!
//! The serving model is single-writer / multi-reader:
//!
//! * **Writers** go through [`ServeGraph::ingest`]: one mutex serialises batch
//!   application, the maintained queries are refreshed, and the result is
//!   *published* as the next epoch ([`crate::epoch::EpochManager`]).  Relation
//!   columns are copy-on-write ([`engine::GraphRelations::snapshot`]), so
//!   publishing is a handful of reference-count bumps and the writer never
//!   waits for readers.
//! * **Readers** never take the writer lock.  They pin the current epoch and
//!   execute against that immutable snapshot — a registered query's maintained
//!   answer is a shared table handle, an ad-hoc query is a from-scratch
//!   execution over the pinned relations in any [`AnswerMode`].  Every
//!   [`Response`] carries its [`PinnedEpoch`], so callers can check *which*
//!   state they read and verify it against a from-scratch execution at that
//!   exact epoch.
//!
//! ```
//! use live::serve::{Request, ServeGraph, Server};
//! use std::sync::Arc;
//! use tgraph::{Batch, Interval};
//!
//! let graph = Arc::new(ServeGraph::new(Interval::of(1, 10)));
//! let risky = graph.register_text("MATCH (x:Person {risk = 'high'}) ON live").unwrap();
//! let server = Server::start(Arc::clone(&graph), 2);
//!
//! let mut batch = Batch::new(1);
//! batch.add_node("ann", "Person").add_existence("ann", Interval::of(1, 9)).set_property(
//!     "ann",
//!     "risk",
//!     "high",
//!     Interval::of(1, 9),
//! );
//! graph.ingest(&batch).unwrap();
//!
//! let response = server.submit(Request::Registered(risky)).wait().unwrap();
//! assert_eq!(response.epoch.epoch(), Some(1));
//! assert_eq!(response.answer.rows().unwrap().len(), 1);
//! server.shutdown();
//! ```

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread;

use obs::Stopwatch;

use engine::bindings::BindingTable;
use engine::plan::PlanSet;
use engine::{compile, AnswerMode, CompactAnswers, ExecutionOptions, GraphRelations};
use tgraph::{Batch, Interval, Itpg};
use trpq::queries::QueryId;

use crate::epoch::{EpochManager, EpochStats, PinnedEpoch};
use crate::error::LiveError;
use crate::graph::{IngestStats, LiveGraph};
use crate::query::{LiveQueryId, RefreshStats};

/// What one [`ServeGraph::ingest`] call did: the writer-side ingestion stats,
/// the refresh stats of every maintained query, and the version of the epoch
/// the result was published as.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Graph- and row-level ingestion outcome (see [`crate::LiveGraph::apply`]).
    pub ingest: IngestStats,
    /// One refresh record per registered query, in registration order.
    pub refreshes: Vec<RefreshStats>,
    /// The version of the newly published epoch.
    pub version: u64,
}

/// The shared serving handle: a mutex-serialised writer [`LiveGraph`] plus the
/// epoch registry readers pin snapshots from.
///
/// Ingestion and registration are writer operations (they briefly hold the
/// writer lock and end by publishing a new epoch); [`ServeGraph::pin`] and
/// everything the [`Server`] does are reader operations and never touch the
/// writer lock.
#[derive(Debug)]
pub struct ServeGraph {
    writer: Mutex<LiveGraph>,
    epochs: Arc<EpochManager>,
    options: ExecutionOptions,
    /// Maintained-query refreshes performed by ingests, and how many of them
    /// fell back to a full recompute — the serving-level fallback rate every
    /// [`Response`] reports through [`ServeHealth`].
    refreshes: AtomicU64,
    fallback_refreshes: AtomicU64,
}

impl ServeGraph {
    /// An empty serving graph over an initial temporal domain, with default
    /// execution options.
    pub fn new(domain: Interval) -> Self {
        ServeGraph::with_options(Itpg::empty(domain), ExecutionOptions::default())
    }

    /// A serving graph starting from an existing (bulk-loaded) graph with
    /// explicit execution options.  The options also govern ad-hoc executions;
    /// a request's [`AnswerMode`] overrides the mode per query.
    pub fn with_options(itpg: Itpg, options: ExecutionOptions) -> Self {
        let graph = LiveGraph::with_options(itpg, options);
        let epochs = EpochManager::new(
            graph.epoch(),
            graph.relations().snapshot(),
            graph.table_handles(),
            options.telemetry,
        );
        ServeGraph {
            writer: Mutex::new(graph),
            epochs,
            options,
            refreshes: AtomicU64::new(0),
            fallback_refreshes: AtomicU64::new(0),
        }
    }

    /// Registers a compiled plan set for maintenance and publishes a new epoch
    /// carrying its initial answer.
    pub fn register(&self, plan_set: PlanSet) -> LiveQueryId {
        let mut writer = self.writer();
        let id = writer.register(plan_set);
        self.publish(&writer);
        id
    }

    /// Registers a query in the practical `MATCH …` surface syntax.
    pub fn register_text(&self, query: &str) -> Result<LiveQueryId, LiveError> {
        let clause = trpq::parser::parse_match(query)?;
        Ok(self.register(compile(&clause)?))
    }

    /// Registers one of the paper's benchmark queries Q1–Q12.
    pub fn register_query(&self, id: QueryId) -> LiveQueryId {
        self.register(engine::queries::plan_for(id))
    }

    /// Ingests one batch and publishes the result as the next epoch: apply the
    /// batch, refresh every maintained query, publish.  Readers pinned to
    /// earlier epochs are unaffected — they keep their snapshot until they
    /// drop it.  A rejected batch publishes nothing.
    pub fn ingest(&self, batch: &Batch) -> Result<IngestReport, LiveError> {
        let waited = self.options.telemetry.then(Stopwatch::start);
        let mut writer = self.writer();
        if let Some(waited) = waited {
            // Readers never take the writer lock, so any wait here is
            // writer-vs-writer contention — the starvation signal.
            let wait = i64::try_from(waited.elapsed_nanos()).unwrap_or(i64::MAX);
            crate::telemetry::serve_metrics().writer_lock_wait_nanos.set(wait);
        }
        let ingest = writer.apply(batch)?;
        let refreshes = writer.refresh_all();
        self.refreshes.fetch_add(refreshes.len() as u64, Ordering::Relaxed);
        let fallbacks = refreshes.iter().filter(|r| r.fallback_full).count() as u64;
        self.fallback_refreshes.fetch_add(fallbacks, Ordering::Relaxed);
        let version = self.publish(&writer);
        Ok(IngestReport { ingest, refreshes, version })
    }

    /// Pins the current epoch for reading (see [`EpochManager::pin`]).
    pub fn pin(&self) -> PinnedEpoch {
        self.epochs.pin()
    }

    /// The epoch registry, for stats and direct pinning.
    pub fn epochs(&self) -> &Arc<EpochManager> {
        &self.epochs
    }

    /// The epoch registry's bookkeeping counters.
    pub fn stats(&self) -> EpochStats {
        self.epochs.stats()
    }

    /// The serving-health snapshot every [`Response`] carries: refresh and
    /// fallback totals plus the epoch registry's retention state.
    pub fn health(&self) -> ServeHealth {
        let epochs = self.epochs.stats();
        ServeHealth {
            refreshes: self.refreshes.load(Ordering::Relaxed),
            fallback_refreshes: self.fallback_refreshes.load(Ordering::Relaxed),
            retained_epochs: epochs.retained,
            pinned_readers: epochs.pinned_readers,
        }
    }

    /// The number of batches the writer has applied so far.
    pub fn batches_applied(&self) -> usize {
        self.writer().batches_applied()
    }

    /// The execution options ad-hoc requests run under (modulo per-request
    /// answer mode).
    pub fn options(&self) -> &ExecutionOptions {
        &self.options
    }

    fn publish(&self, writer: &LiveGraph) -> u64 {
        self.epochs.publish(writer.epoch(), writer.relations().snapshot(), writer.table_handles())
    }

    fn writer(&self) -> MutexGuard<'_, LiveGraph> {
        // Writer state stays consistent even if a caller panicked mid-ingest:
        // `apply` is transactional at the graph level, so keep serving.
        self.writer.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// One query request submitted to the [`Server`].
#[derive(Debug, Clone)]
pub enum Request {
    /// Read the maintained answer of a registered query from the pinned epoch
    /// (no execution — the snapshot already carries the table handle).
    Registered(LiveQueryId),
    /// Parse, compile and execute a `MATCH …` query from scratch against the
    /// pinned snapshot, answering in the given mode.
    AdHoc {
        /// The query in the practical surface syntax.
        text: String,
        /// How to shape the answers (materialise / compact / enumerate).
        mode: AnswerMode,
    },
    /// Execute a pre-compiled plan set against the pinned snapshot — what a
    /// client with a prepared statement submits.
    Compiled {
        /// The compiled plan set (shared, so resubmission is free).
        plan: Arc<PlanSet>,
        /// How to shape the answers.
        mode: AnswerMode,
    },
    /// Render the process-wide metric registry — the scrape endpoint.  Served
    /// by the same worker pool as queries, so a scrape observes the server
    /// exactly as it is while queries are in flight.
    Metrics(MetricsFormat),
}

/// The exposition format of a [`Request::Metrics`] scrape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition format 0.0.4
    /// ([`obs::Registry::render_prometheus`]).
    Prometheus,
    /// The JSON rendering ([`obs::Registry::render_json`]).
    Json,
}

/// The serving-health counters attached to every [`Response`]: how much
/// maintenance work ingests have done and how the fallback rate and epoch
/// retention look right now.  Clients see staleness pressure (full-recompute
/// fallbacks) and snapshot build-up (pinned readers holding old epochs)
/// without a separate stats round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeHealth {
    /// Maintained-query refreshes performed by ingests so far.
    pub refreshes: u64,
    /// How many of those refreshes fell back to a full recompute
    /// ([`RefreshStats::fallback_full`]).
    pub fallback_refreshes: u64,
    /// Epoch snapshots currently retained (the current one plus every pinned
    /// one).
    pub retained_epochs: usize,
    /// Pins currently held by readers, across all retained epochs.
    pub pinned_readers: usize,
}

/// The answer payload of a [`Response`], shaped by the request's
/// [`AnswerMode`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeAnswer {
    /// The maintained answer of a registered query — a shared handle into the
    /// pinned epoch, no rows copied.
    Maintained(Arc<BindingTable>),
    /// A materialised ad-hoc answer ([`AnswerMode::Materialized`]).
    Rows(BindingTable),
    /// Per-`(source, target)` coalesced interval answers
    /// ([`AnswerMode::Compact`]).
    Compact(CompactAnswers),
    /// An ad-hoc answer streamed row-by-row through the bounded-delay cursor
    /// ([`AnswerMode::Enumerate`]), drained in canonical order.
    Streamed {
        /// The streamed rows, in the canonical table order.
        rows: BindingTable,
        /// The cursor's peak buffered-row count — the bounded-delay evidence.
        peak_buffered: usize,
    },
    /// A rendered metrics scrape ([`Request::Metrics`]).
    Metrics(String),
}

impl ServeAnswer {
    /// The answer as a binding table, if the mode produced one (maintained,
    /// materialised or streamed answers; `None` for compact answers).
    pub fn rows(&self) -> Option<&BindingTable> {
        match self {
            ServeAnswer::Maintained(table) => Some(table),
            ServeAnswer::Rows(table) => Some(table),
            ServeAnswer::Streamed { rows, .. } => Some(rows),
            ServeAnswer::Compact(_) | ServeAnswer::Metrics(_) => None,
        }
    }

    /// The compact interval answers, if the request asked for them.
    pub fn compact(&self) -> Option<&CompactAnswers> {
        match self {
            ServeAnswer::Compact(compact) => Some(compact),
            _ => None,
        }
    }

    /// The rendered metrics scrape, if the request was [`Request::Metrics`].
    pub fn metrics(&self) -> Option<&str> {
        match self {
            ServeAnswer::Metrics(text) => Some(text),
            _ => None,
        }
    }
}

/// A served answer plus the pinned epoch it was computed on.  Holding the
/// response keeps the epoch pinned, so the caller can re-read (or verify) the
/// exact snapshot the answer came from.
#[derive(Debug)]
pub struct Response {
    /// The epoch the request was executed against, still pinned.
    pub epoch: PinnedEpoch,
    /// The answer payload.
    pub answer: ServeAnswer,
    /// Serving health at response time: refresh/fallback totals and epoch
    /// retention (see [`ServeGraph::health`]).
    pub health: ServeHealth,
}

struct Job {
    request: Request,
    reply: mpsc::Sender<Result<Response, LiveError>>,
    /// Started at submission when telemetry is on; measures queue wait at
    /// dequeue and end-to-end latency at reply.
    submitted: Option<Stopwatch>,
}

/// A pending response: blocks on [`Ticket::wait`] until a worker replies.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, LiveError>>,
}

impl Ticket {
    /// Blocks until the server responds.  Returns
    /// [`LiveError::ServerClosed`] if the server shut down first.
    pub fn wait(self) -> Result<Response, LiveError> {
        self.rx.recv().unwrap_or(Err(LiveError::ServerClosed))
    }
}

/// A pool of worker threads answering [`Request`]s against pinned snapshots of
/// one [`ServeGraph`].
///
/// Workers pull jobs from a shared queue; each job pins the *current* epoch at
/// execution time, runs entirely against that immutable snapshot, and replies
/// with a [`Response`] that keeps the epoch pinned.  The pool never blocks the
/// writer: ingestion can proceed while every worker is mid-query.
///
/// The pool is panic-contained: a request whose execution panics resolves its
/// own ticket to [`LiveError::WorkerPanicked`] and the worker keeps serving —
/// one bad request can never wedge the server or take other requests down.
#[derive(Debug)]
pub struct Server {
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    closed: Arc<AtomicBool>,
    workers: Vec<thread::JoinHandle<()>>,
    telemetry: bool,
}

impl Server {
    /// Spawns `workers` worker threads serving queries against `graph`.
    /// At least one worker is always spawned.
    pub fn start(graph: Arc<ServeGraph>, workers: usize) -> Self {
        let telemetry = graph.options().telemetry;
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let closed = Arc::new(AtomicBool::new(false));
        let handles = (0..workers.max(1))
            .map(|_| {
                let graph = Arc::clone(&graph);
                let rx = Arc::clone(&rx);
                let closed = Arc::clone(&closed);
                thread::spawn(move || worker_loop(&graph, &rx, &closed))
            })
            .collect();
        Server { tx: Mutex::new(Some(tx)), closed, workers: handles, telemetry }
    }

    /// Enqueues a request; any idle worker picks it up.  The returned
    /// [`Ticket`] resolves to the response (or [`LiveError::ServerClosed`] if
    /// the server shuts down first).
    pub fn submit(&self, request: Request) -> Ticket {
        let (reply, rx) = mpsc::channel();
        let submitted = self.telemetry.then(Stopwatch::start);
        match &*self.sender() {
            Some(tx) if !self.closed.load(Ordering::Acquire) => {
                if tx.send(Job { request, reply: reply.clone(), submitted }).is_err() {
                    let _ = reply.send(Err(LiveError::ServerClosed));
                } else if self.telemetry {
                    crate::telemetry::serve_metrics().queue_depth.add(1);
                }
            }
            _ => {
                let _ = reply.send(Err(LiveError::ServerClosed));
            }
        }
        Ticket { rx }
    }

    /// The number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// True once [`Server::close`] has been called (or the server is mid-drop).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Closes the server abortively through a shared reference: subsequent
    /// submissions fail fast with [`LiveError::ServerClosed`], and jobs still
    /// sitting in the queue resolve to [`LiveError::ServerClosed`] instead of
    /// executing.  Requests already mid-execution run to completion.  Workers
    /// are joined later, by [`Server::shutdown`] or drop.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        drop(self.sender().take());
    }

    /// Drains the queue and joins every worker.  (Dropping the server does the
    /// same; this form surfaces the join explicitly.)
    pub fn shutdown(mut self) {
        self.join();
    }

    fn sender(&self) -> MutexGuard<'_, Option<mpsc::Sender<Job>>> {
        // The guarded value is a plain sender handle; a poisoned lock cannot
        // leave it inconsistent, so recover and keep serving.
        self.tx.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn join(&mut self) {
        drop(self.sender().take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join();
    }
}

fn worker_loop(graph: &ServeGraph, rx: &Mutex<mpsc::Receiver<Job>>, closed: &AtomicBool) {
    let metrics = graph.options().telemetry.then(crate::telemetry::serve_metrics);
    if let Some(metrics) = metrics {
        metrics.workers.add(1);
    }
    loop {
        // Hold the queue lock only for the dequeue, never during execution.
        let job = {
            let queue = match rx.lock() {
                Ok(queue) => queue,
                Err(poisoned) => poisoned.into_inner(),
            };
            queue.recv()
        };
        match job {
            Ok(job) => {
                if let Some(metrics) = metrics {
                    metrics.queue_depth.sub(1);
                    metrics.busy_workers.add(1);
                    if let Some(submitted) = &job.submitted {
                        metrics.queue_wait_seconds.record(submitted.elapsed_nanos());
                    }
                }
                let result = if closed.load(Ordering::Acquire) {
                    // Abortive close: drain queued jobs without executing them.
                    Err(LiveError::ServerClosed)
                } else {
                    contained(graph, job.request)
                };
                if let Some(metrics) = metrics {
                    metrics.busy_workers.sub(1);
                    if matches!(&result, Err(LiveError::WorkerPanicked(_))) {
                        metrics.worker_panics.inc();
                    }
                    if let Some(submitted) = &job.submitted {
                        metrics.request_seconds.record(submitted.elapsed_nanos());
                    }
                }
                // A send error means the client dropped its ticket; fine.
                let _ = job.reply.send(result);
            }
            Err(mpsc::RecvError) => {
                // Server shut down; the channel is drained.
                if let Some(metrics) = metrics {
                    metrics.workers.sub(1);
                }
                return;
            }
        }
    }
}

/// Executes one request with panic containment: a panicking execution becomes
/// [`LiveError::WorkerPanicked`] on the requester's ticket and the worker
/// thread survives to serve the next job.
fn contained(graph: &ServeGraph, request: Request) -> Result<Response, LiveError> {
    // `handle` only reads the shared graph (snapshots are immutable and the
    // writer mutex recovers from poisoning), so unwinding cannot leave shared
    // state torn — the unwind-safety assertion is sound.
    panic::catch_unwind(AssertUnwindSafe(|| handle(graph, request)))
        .unwrap_or_else(|payload| Err(LiveError::WorkerPanicked(panic_message(&payload))))
}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Executes one request against a freshly pinned snapshot.
fn handle(graph: &ServeGraph, request: Request) -> Result<Response, LiveError> {
    let metrics = graph.options().telemetry.then(crate::telemetry::serve_metrics);
    let epoch = graph.pin();
    let answer = match request {
        Request::Registered(id) => {
            if let Some(metrics) = metrics {
                metrics.req_registered.inc();
            }
            let table = epoch.table(id).ok_or(LiveError::UnknownQuery(id))?;
            ServeAnswer::Maintained(Arc::clone(table))
        }
        Request::AdHoc { text, mode } => {
            if let Some(metrics) = metrics {
                mode_counter(metrics, mode).inc();
            }
            let clause = trpq::parser::parse_match(&text)?;
            let plan = compile(&clause)?;
            execute_on(&plan, epoch.relations(), *graph.options(), mode)
        }
        Request::Compiled { plan, mode } => {
            if let Some(metrics) = metrics {
                mode_counter(metrics, mode).inc();
            }
            execute_on(&plan, epoch.relations(), *graph.options(), mode)
        }
        Request::Metrics(format) => {
            // Counted before rendering, so a scrape observes itself.
            if let Some(metrics) = metrics {
                metrics.req_metrics.inc();
            }
            ServeAnswer::Metrics(match format {
                MetricsFormat::Prometheus => obs::global().render_prometheus(),
                MetricsFormat::Json => obs::global().render_json(),
            })
        }
    };
    Ok(Response { epoch, answer, health: graph.health() })
}

/// The per-mode request counter an ad-hoc or prepared execution bumps.
fn mode_counter(metrics: &crate::telemetry::ServeMetrics, mode: AnswerMode) -> &obs::Counter {
    match mode {
        AnswerMode::Materialized => &metrics.req_full,
        AnswerMode::Compact => &metrics.req_compact,
        AnswerMode::Enumerate => &metrics.req_enum,
    }
}

/// Runs a plan set against an immutable snapshot in the requested answer mode.
fn execute_on(
    plan: &PlanSet,
    relations: &GraphRelations,
    options: ExecutionOptions,
    mode: AnswerMode,
) -> ServeAnswer {
    let answers = engine::execute_answers(plan, relations, &options.with_mode(mode));
    match mode {
        AnswerMode::Materialized => {
            ServeAnswer::Rows(answers.into_table().expect("materialized answers"))
        }
        AnswerMode::Compact => {
            ServeAnswer::Compact(answers.into_compact().expect("compact answers"))
        }
        AnswerMode::Enumerate => {
            let mut cursor = answers.into_cursor().expect("enumerated answers");
            let columns = cursor.columns().to_vec();
            let mut rows = Vec::new();
            for row in cursor.by_ref() {
                rows.push(row);
            }
            let peak_buffered = cursor.peak_buffered_rows();
            ServeAnswer::Streamed { rows: BindingTable::from_rows(columns, rows), peak_buffered }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::execute;
    use tgraph::Interval;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    fn story() -> Vec<Batch> {
        let mut b1 = Batch::new(1);
        b1.add_node("mia", "Person")
            .add_node("eve", "Person")
            .add_node("room", "Room")
            .add_existence("mia", iv(1, 10))
            .add_existence("eve", iv(1, 10))
            .add_existence("room", iv(1, 10))
            .set_property("mia", "risk", "high", iv(1, 10))
            .set_property("eve", "risk", "low", iv(1, 10));
        let mut b2 = Batch::new(2);
        b2.add_edge("meets1", "meets", "mia", "eve")
            .add_existence("meets1", iv(2, 3))
            .add_edge("visits1", "visits", "eve", "room")
            .add_existence("visits1", iv(5, 6));
        let mut b3 = Batch::new(8);
        b3.set_property("eve", "test", "pos", iv(8, 10));
        vec![b1, b2, b3]
    }

    const Q9ISH: &str =
        "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) ON live";

    #[test]
    fn served_answers_match_direct_execution() {
        let graph = Arc::new(ServeGraph::with_options(
            Itpg::empty(iv(1, 10)),
            ExecutionOptions::sequential(),
        ));
        let q = graph.register_text(Q9ISH).unwrap();
        let server = Server::start(Arc::clone(&graph), 2);
        for batch in story() {
            graph.ingest(&batch).unwrap();
        }

        let maintained = server.submit(Request::Registered(q)).wait().unwrap();
        assert_eq!(maintained.epoch.epoch(), Some(8));
        let adhoc = server
            .submit(Request::AdHoc { text: Q9ISH.into(), mode: AnswerMode::Materialized })
            .wait()
            .unwrap();
        let expected = execute(
            &compile(&trpq::parser::parse_match(Q9ISH).unwrap()).unwrap(),
            adhoc.epoch.relations(),
            &ExecutionOptions::sequential(),
        );
        assert_eq!(adhoc.answer.rows().unwrap(), &expected.table);
        assert_eq!(maintained.answer.rows().unwrap(), &expected.table);
        assert_eq!(expected.table.len(), 2);
        server.shutdown();
    }

    #[test]
    fn all_answer_modes_are_served() {
        let graph = Arc::new(ServeGraph::with_options(
            Itpg::empty(iv(1, 10)),
            ExecutionOptions::sequential(),
        ));
        let server = Server::start(Arc::clone(&graph), 2);
        for batch in story() {
            graph.ingest(&batch).unwrap();
        }
        let plan = Arc::new(compile(&trpq::parser::parse_match(Q9ISH).unwrap()).unwrap());
        let full = server
            .submit(Request::Compiled { plan: Arc::clone(&plan), mode: AnswerMode::Materialized })
            .wait()
            .unwrap();
        let streamed = server
            .submit(Request::Compiled { plan: Arc::clone(&plan), mode: AnswerMode::Enumerate })
            .wait()
            .unwrap();
        let compact =
            server.submit(Request::Compiled { plan, mode: AnswerMode::Compact }).wait().unwrap();
        let table = full.answer.rows().unwrap();
        assert_eq!(streamed.answer.rows().unwrap(), table);
        if let ServeAnswer::Streamed { peak_buffered, .. } = streamed.answer {
            assert!(peak_buffered <= table.len().max(1));
        }
        assert!(compact.answer.compact().is_some());
        server.shutdown();
    }

    #[test]
    fn responses_pin_the_epoch_they_were_served_from() {
        let graph = Arc::new(ServeGraph::new(iv(1, 10)));
        let server = Server::start(Arc::clone(&graph), 1);
        let batches = story();
        graph.ingest(&batches[0]).unwrap();
        let early = server
            .submit(Request::AdHoc { text: Q9ISH.into(), mode: AnswerMode::Materialized })
            .wait()
            .unwrap();
        let early_version = early.epoch.version();
        graph.ingest(&batches[1]).unwrap();
        graph.ingest(&batches[2]).unwrap();
        assert!(graph.epochs().is_retained(early_version), "the response pins its epoch");
        assert_eq!(early.epoch.epoch(), Some(1));
        assert!(early.answer.rows().unwrap().is_empty(), "nothing positive at epoch 1");
        drop(early);
        assert!(!graph.epochs().is_retained(early_version), "dropping the response unpins");
        server.shutdown();
    }

    #[test]
    fn unknown_queries_and_closed_servers_error() {
        let graph = Arc::new(ServeGraph::new(iv(1, 5)));
        let server = Server::start(Arc::clone(&graph), 1);
        let bogus = LiveQueryId(7);
        assert_eq!(
            server.submit(Request::Registered(bogus)).wait().unwrap_err(),
            LiveError::UnknownQuery(bogus)
        );
        let ticket = {
            let server = Server::start(Arc::clone(&graph), 1);
            let ticket = server.submit(Request::AdHoc {
                text: "MATCH (x:Person) ON g".into(),
                mode: AnswerMode::Materialized,
            });
            // Shutdown drains the queue first, so this ticket still resolves.
            server.shutdown();
            ticket
        };
        assert!(ticket.wait().is_ok(), "queued work drains before shutdown");
        server.shutdown();
    }
}
