//! `check` — the workspace's own static analyzer.
//!
//! Three modes, combinable; every mode must pass for the process to exit 0:
//!
//! * `--workspace` (default): run the repo-specific source lints over every
//!   `.rs` file, filtered through `crates/check/allow.list`.
//! * `--plans`: compile-audit the built-in benchmark plans (Q1–Q12) with the
//!   engine's static plan auditor.
//! * `--self-test`: prove each lint still catches its seeded-violation
//!   fixture, and that the plan auditor still rejects a broken plan.
//!
//! Hand-rolled on std only: the build environment has no registry access, so
//! there is no syn/quote/clippy-plugin machinery here — see `src/lexer.rs`
//! for the token-level approximation the lints run on.

mod allow;
mod lexer;
mod lints;
mod plans;
mod selftest;
mod semantic;
mod walk;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut run_workspace = false;
    let mut run_plans = false;
    let mut run_semantic = false;
    let mut run_self_test = false;
    let mut strict = false;
    let mut root_override: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => run_workspace = true,
            "--plans" => run_plans = true,
            "--semantic" => run_semantic = true,
            "--self-test" => run_self_test = true,
            "--strict" => strict = true,
            "--workspace-root" => match args.next() {
                Some(path) => root_override = Some(PathBuf::from(path)),
                None => {
                    eprintln!("check: --workspace-root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("check: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if !run_workspace && !run_plans && !run_semantic && !run_self_test {
        run_workspace = true;
    }

    let root = match root_override.map_or_else(workspace_root, Ok) {
        Ok(root) => root,
        Err(message) => {
            eprintln!("check: {message}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    if run_self_test {
        failed |= !selftest::run(&root);
    }
    if run_workspace {
        failed |= !run_workspace_lints(&root, strict);
    }
    if run_plans {
        failed |= !plans::run();
    }
    if run_semantic {
        failed |= !semantic::run();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_help() {
    println!("check — workspace static analysis for repo-specific invariants");
    println!();
    println!("usage: cargo run -p check [--workspace] [--plans] [--semantic] [--self-test]");
    println!("                          [--strict] [--workspace-root <path>]");
    println!();
    println!("  --semantic  run the engine's semantic plan analyzer over the built-in");
    println!("              benchmark plans (emptiness, dead alternatives, band feasibility)");
    println!("  --strict    treat unused allow.list entries as failures, not warnings");
    println!();
    println!("lints (deny-by-default; exceptions live in crates/check/allow.list):");
    for lint in lints::all() {
        println!("  {:<24} {}", lint.id, lint.summary);
    }
}

/// Locates the workspace root: `$CARGO_MANIFEST_DIR/../..` when run through
/// cargo, else the nearest ancestor of the current directory whose
/// `Cargo.toml` declares `[workspace]`.
fn workspace_root() -> Result<PathBuf, String> {
    if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let dir = PathBuf::from(manifest_dir);
        if let Some(root) = dir.parent().and_then(Path::parent) {
            return Ok(root.to_path_buf());
        }
    }
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found; pass --workspace-root".to_owned());
        }
    }
}

/// The `--workspace` mode.  Returns true on success.  Under `--strict`, an
/// unused allow.list entry is a failure (the allowlist must not rot), not a
/// warning.
fn run_workspace_lints(root: &Path, strict: bool) -> bool {
    let lints = lints::all();
    let files = walk::rust_files(root);
    let mut allowlist = match allow::Allowlist::load(&root.join("crates/check/allow.list")) {
        Ok(allowlist) => allowlist,
        Err(message) => {
            eprintln!("check: {message}");
            return false;
        }
    };

    let mut violations = 0usize;
    let mut allowed = 0usize;
    let mut scanned = 0usize;
    for rel in &files {
        let applicable: Vec<_> = lints.iter().filter(|l| (l.applies)(rel)).collect();
        if applicable.is_empty() {
            continue;
        }
        let Ok(content) = std::fs::read_to_string(root.join(rel)) else {
            eprintln!("check: warning: unreadable file {rel}");
            continue;
        };
        scanned += 1;
        let source = lexer::analyze(&content);
        for lint in applicable {
            for finding in (lint.check)(rel, &source) {
                if allowlist.allows(&finding) {
                    allowed += 1;
                } else {
                    println!(
                        "{}: {}:{}: {}",
                        finding.lint, finding.path, finding.line, finding.message
                    );
                    violations += 1;
                }
            }
        }
    }
    let mut unused_entries = 0usize;
    for entry in allowlist.unused() {
        unused_entries += 1;
        let reason = if entry.reason.is_empty() { "no reason given" } else { &entry.reason };
        let level = if strict { "error" } else { "warning" };
        eprintln!(
            "check: {level}: unused allow.list entry `{} {}` ({reason}) — remove it or fix the path",
            entry.lint, entry.path
        );
    }
    if strict && unused_entries > 0 {
        eprintln!("check: --strict: {unused_entries} unused allow.list entr(ies) must be removed");
        return false;
    }
    if violations == 0 {
        println!(
            "check: workspace clean — {} lints over {scanned} files, 0 violations \
             ({allowed} audited exceptions)",
            lints.len()
        );
        true
    } else {
        eprintln!("check: {violations} violation(s); fix them or record an audited exception in crates/check/allow.list");
        false
    }
}
