//! The audited-exception list: `crates/check/allow.list`.
//!
//! Format, one entry per line:
//!
//! ```text
//! <lint-id> <path-prefix> [-- reason]
//! ```
//!
//! A finding is allowlisted when its lint id matches exactly and its path
//! starts with the entry's path prefix.  `#`-lines and blank lines are
//! ignored.  Entries that never match anything are reported as warnings so
//! the list cannot silently rot.

use std::path::Path;

use crate::lints::Finding;

/// One parsed allowlist entry.
pub struct Entry {
    /// The lint this entry silences.
    pub lint: String,
    /// Workspace-relative path prefix the exception covers.
    pub path: String,
    /// Why the exception is sound (after `--`).
    pub reason: String,
    /// Set when at least one finding matched during the run.
    pub used: bool,
}

/// The parsed allowlist.
#[derive(Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<Entry>,
}

impl Allowlist {
    /// Loads `allow.list` from disk; a missing file is an empty list.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Ok(Allowlist::default());
        };
        let mut entries = Vec::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, reason) = match line.split_once(" -- ") {
                Some((spec, reason)) => (spec.trim(), reason.trim().to_owned()),
                None => (line, String::new()),
            };
            let mut fields = spec.split_whitespace();
            let (Some(lint), Some(entry_path), None) =
                (fields.next(), fields.next(), fields.next())
            else {
                return Err(format!(
                    "{}:{}: malformed allowlist entry (expected `<lint-id> <path> [-- reason]`): {line}",
                    path.display(),
                    number + 1,
                ));
            };
            entries.push(Entry {
                lint: lint.to_owned(),
                path: entry_path.to_owned(),
                reason,
                used: false,
            });
        }
        Ok(Allowlist { entries })
    }

    /// True (and marks the entry used) if some entry covers the finding.
    pub fn allows(&mut self, finding: &Finding) -> bool {
        let mut allowed = false;
        for entry in &mut self.entries {
            if entry.lint == finding.lint && finding.path.starts_with(&entry.path) {
                entry.used = true;
                allowed = true;
            }
        }
        allowed
    }

    /// Entries that matched nothing this run.
    pub fn unused(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter().filter(|e| !e.used)
    }
}
