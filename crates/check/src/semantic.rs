//! The `--semantic` mode: run the engine's semantic plan analyzer
//! ([`engine::plan::analyze`]) over every built-in benchmark plan — Q1–Q12
//! plus the REACH/RECUR closure workloads — against the paper's Figure 1
//! example graph, whose schema exercises every label and property the
//! benchmark queries mention.
//!
//! Where `--plans` proves the plans are structurally well-formed, this mode
//! proves they are not semantically vacuous: no statically-empty plan, no dead
//! closure alternative, no infeasible temporal band.  Unbounded closures
//! (REACH's structural star) are reported as notes, not failures — structural
//! reachability is legitimately unbounded.
//!
//! Every diagnostic kind is self-tested against a seeded broken plan by
//! [`self_test`], wired into `--self-test`, so a regression that blinds the
//! analyzer fails CI the same way a blinded lint does.

use engine::{analyze, Analysis, DiagnosticKind, PlanSet, SchemaSummary, Severity};
use trpq::queries::QueryId;

/// Analyzes Q1–Q12 + REACH + RECUR against the Figure 1 schema.  Returns true
/// when no plan has an error-severity diagnostic.
pub fn run() -> bool {
    let graph = engine::GraphRelations::from_itpg(&workload::figure1());
    let schema = SchemaSummary::of(&graph);
    let mut failed = false;
    for &id in QueryId::ALL.iter() {
        let plan_set = engine::queries::plan_for(id);
        failed |= !report(&format!("{id:?}"), &analyze(&plan_set, &schema));
    }
    for (name, text) in [
        (bench::REACH_QUERY_NAME, bench::REACH_QUERY_TEXT),
        (bench::RECUR_QUERY_NAME, bench::RECUR_QUERY_TEXT),
    ] {
        match compile_text(text) {
            Ok(plan_set) => failed |= !report(name, &analyze(&plan_set, &schema)),
            Err(error) => {
                eprintln!("semantic: {name} FAILED to compile: {error}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("semantic: at least one built-in plan is semantically broken");
    } else {
        println!("semantic: all {} built-in plans are satisfiable", QueryId::ALL.len() + 2);
    }
    !failed
}

fn compile_text(text: &str) -> trpq::Result<PlanSet> {
    engine::compile(&trpq::parse_match(text)?)
}

/// Prints one query's analysis with plan-path provenance.  Returns true when
/// the analysis carries no error.
fn report(name: &str, analysis: &Analysis) -> bool {
    for diagnostic in &analysis.diagnostics {
        match diagnostic.severity() {
            Severity::Error => eprintln!("semantic: {name} FAILED: {diagnostic}"),
            Severity::Note => println!("semantic: {name} note: {diagnostic}"),
        }
    }
    if analysis.has_errors() {
        return false;
    }
    let hops: Vec<String> = analysis
        .bounds
        .iter()
        .map(|b| b.max_hops.map_or_else(|| "unbounded".to_owned(), |h| h.to_string()))
        .collect();
    println!(
        "semantic: {name} ok — {} plan(s), max hops [{}], {} alternative(s) pruned, \
         {} closure window(s) tightened",
        analysis.bounds.len(),
        hops.join(", "),
        analysis.pruned_alternatives,
        analysis.tightened_closures,
    );
    true
}

/// One seeded broken-plan fixture per diagnostic kind.  Each query is
/// audit-clean (structurally fine) but semantically broken against the
/// Figure 1 schema in exactly one way; the self-test fails if the analyzer no
/// longer reports the expected kind.
const FIXTURES: &[(&str, DiagnosticKind)] = &[
    // No `Robot` node exists in the schema: label-alphabet reachability must
    // prove the plan empty.
    ("MATCH (x:Robot)-[e:meets]->(y) ON g", DiagnosticKind::EmptyPlan),
    // `warps` edges do not exist, so the second closure alternative can never
    // fire from any reachable state.
    (
        "MATCH (x:Person)-/(FWD/:meets/FWD + FWD/:warps/FWD)*/-(y:Person) ON g",
        DiagnosticKind::DeadAlternative,
    ),
    // Figure 1's domain is 10 steps wide: a 50-step shift cannot land.
    ("MATCH (x:Person)-/NEXT[50,60]/-(y) ON g", DiagnosticKind::InfeasibleBand),
    // A purely structural star has no static iteration bound (reported as a
    // note, but the self-test still requires the analyzer to say so).
    ("MATCH (x:Person)-/(FWD/:meets/FWD)*/-(y:Person) ON g", DiagnosticKind::UnboundedClosure),
];

/// Proves every diagnostic kind still fires on its seeded fixture.  Returns
/// true on success.
pub fn self_test() -> bool {
    let graph = engine::GraphRelations::from_itpg(&workload::figure1());
    let schema = SchemaSummary::of(&graph);
    let mut ok = true;
    for &(text, expected) in FIXTURES {
        let analysis = match compile_text(text) {
            Ok(plan_set) => analyze(&plan_set, &schema),
            Err(error) => {
                eprintln!(
                    "self-test: semantic [{}]: fixture failed to compile: {error}",
                    expected.tag()
                );
                ok = false;
                continue;
            }
        };
        match analysis.diagnostics.iter().find(|d| d.kind == expected) {
            Some(diagnostic) => {
                println!("self-test: semantic [{}]: caught — {diagnostic}", expected.tag());
            }
            None => {
                eprintln!(
                    "self-test: semantic [{}]: FAILED — the seeded broken plan `{text}` \
                     was not diagnosed (got {:?})",
                    expected.tag(),
                    analysis.diagnostics,
                );
                ok = false;
            }
        }
    }
    ok
}
