//! The workspace lints: deny-by-default source checks for repo-specific
//! invariants the compiler cannot see.
//!
//! Each lint is a token-level pass over [`crate::lexer::Source`] (comments and
//! literals blanked, `#[cfg(test)]` regions marked).  Findings are filtered
//! through `crates/check/allow.list`; everything that survives fails the run.

use crate::lexer::Source;

/// One violation of one lint.
#[derive(Debug)]
pub struct Finding {
    /// The lint that fired.
    pub lint: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// One workspace lint: a scope predicate plus a checker.
pub struct Lint {
    /// Stable identifier, used in output and in `allow.list`.
    pub id: &'static str,
    /// One-line description for `--help` and reports.
    pub summary: &'static str,
    /// File name of the seeded-violation fixture under `crates/check/fixtures/`.
    pub fixture: &'static str,
    /// The path the fixture pretends to live at during `--self-test` (so the
    /// scope predicate and path-sensitive logic run exactly as in a real scan).
    pub fixture_path: &'static str,
    /// True if the lint scans this workspace-relative path.
    pub applies: fn(&str) -> bool,
    /// The checker itself.
    pub check: fn(&str, &Source) -> Vec<Finding>,
}

/// Every lint, in reporting order.
pub fn all() -> Vec<Lint> {
    vec![
        Lint {
            id: "live-graph-discipline",
            summary: "LiveGraph may only be constructed behind ServeGraph's write-then-publish discipline",
            fixture: "live_graph_discipline.rs",
            fixture_path: "crates/rogue/src/lib.rs",
            applies: |p| p.starts_with("crates/") && p.contains("/src/"),
            check: check_live_graph_discipline,
        },
        Lint {
            id: "unwrap-in-hot-path",
            summary: "no .unwrap()/.expect() in the engine's execution hot path",
            fixture: "unwrap_in_hot_path.rs",
            fixture_path: "crates/engine/src/steps/fixture.rs",
            applies: |p| {
                p.starts_with("crates/engine/src/steps/") || p == "crates/engine/src/executor.rs"
            },
            check: check_unwrap_in_hot_path,
        },
        Lint {
            id: "unwrap-under-lock",
            summary: "no .unwrap()/.expect() while holding a MutexGuard",
            fixture: "unwrap_under_lock.rs",
            fixture_path: "crates/rogue/src/lib.rs",
            applies: |p| p.starts_with("crates/") && p.contains("/src/"),
            check: check_unwrap_under_lock,
        },
        Lint {
            id: "deprecated-entry-point",
            summary: "no calls to the deprecated execute_clause/execute_text/execute_query wrappers",
            fixture: "deprecated_entry_point.rs",
            fixture_path: "crates/rogue/src/lib.rs",
            applies: |p| p.ends_with(".rs"),
            check: check_deprecated_entry_point,
        },
        Lint {
            id: "wallclock-in-test",
            summary: "deterministic test paths must not read wall-clock time",
            fixture: "wallclock_in_test.rs",
            fixture_path: "tests/fixture.rs",
            applies: |p| p.ends_with(".rs"),
            check: check_wallclock_in_test,
        },
        Lint {
            id: "raw-timing-outside-obs",
            summary: "runtime crates take wall-clock readings through obs, never bare Instant::now",
            fixture: "raw_timing_outside_obs.rs",
            fixture_path: "crates/engine/src/fixture.rs",
            applies: |p| {
                ["crates/engine/", "crates/live/", "crates/dataflow/", "crates/bench/"]
                    .iter()
                    .any(|prefix| p.starts_with(prefix))
            },
            check: check_raw_timing_outside_obs,
        },
        Lint {
            id: "lock-order",
            summary: "the epoch protocol acquires writer before epoch-registry, never the reverse",
            fixture: "lock_order.rs",
            fixture_path: "crates/live/src/epoch.rs",
            applies: |p| {
                matches!(
                    p,
                    "crates/live/src/epoch.rs"
                        | "crates/live/src/serve.rs"
                        | "crates/live/src/graph.rs"
                )
            },
            check: check_lock_order,
        },
    ]
}

fn finding(lint: &'static str, path: &str, line: usize, message: String) -> Finding {
    Finding { lint, path: path.to_owned(), line: line + 1, message }
}

fn contains_any(line: &str, needles: &[&str]) -> bool {
    needles.iter().any(|n| line.contains(n))
}

// ---------------------------------------------------------------------------
// live-graph-discipline

fn check_live_graph_discipline(path: &str, src: &Source) -> Vec<Finding> {
    const CONSTRUCTIONS: &[&str] = &["LiveGraph::new(", "LiveGraph::with_options(", "LiveGraph {"];
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        if src.in_test[i] || !contains_any(line, CONSTRUCTIONS) {
            continue;
        }
        out.push(finding(
            "live-graph-discipline",
            path,
            i,
            "constructs a LiveGraph outside ServeGraph's write-then-publish discipline; \
             concurrent readers never see its epochs.  Go through ServeGraph \
             (crates/live/src/serve.rs), or record an audited exception in allow.list"
                .to_owned(),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// unwrap-in-hot-path

fn check_unwrap_in_hot_path(path: &str, src: &Source) -> Vec<Finding> {
    const PANICS: &[&str] = &[".unwrap()", ".expect("];
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        if src.in_test[i] || !contains_any(line, PANICS) {
            continue;
        }
        out.push(finding(
            "unwrap-in-hot-path",
            path,
            i,
            "panics in the engine's execution hot path take down whole worker threads; \
             return Option/Result, restructure the match, or guard the invariant with \
             debug_assert! instead"
                .to_owned(),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// unwrap-under-lock

fn check_unwrap_under_lock(path: &str, src: &Source) -> Vec<Finding> {
    const PANICS: &[&str] = &[".unwrap()", ".expect("];
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    // Depths (at the binding statement) of live let-bound MutexGuards.
    let mut guards: Vec<i32> = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        let start_depth = depth;
        if !src.in_test[i] {
            let direct_poison_panic =
                line.contains(".lock().unwrap()") || line.contains(".lock().expect(");
            if (direct_poison_panic || !guards.is_empty()) && contains_any(line, PANICS) {
                out.push(finding(
                    "unwrap-under-lock",
                    path,
                    i,
                    "panicking while a MutexGuard is live poisons the lock for every other \
                     thread; drop the guard first, or recover explicitly with \
                     unwrap_or_else(PoisonError::into_inner)"
                        .to_owned(),
                ));
            }
        }
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    while guards.last().is_some_and(|&g| depth < g) {
                        guards.pop();
                    }
                }
                _ => {}
            }
        }
        if !src.in_test[i] && line.contains(".lock()") && line.contains("let ") {
            guards.push(start_depth);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// deprecated-entry-point

fn check_deprecated_entry_point(path: &str, src: &Source) -> Vec<Finding> {
    const WRAPPERS: &[&str] = &["execute_clause(", "execute_text(", "execute_query("];
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        if !contains_any(line, WRAPPERS) {
            continue;
        }
        out.push(finding(
            "deprecated-entry-point",
            path,
            i,
            "calls a deprecated one-shot execution wrapper; build an engine::Query (or call \
             engine::execute/execute_answers) so options and answer modes stay explicit"
                .to_owned(),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// wallclock-in-test

fn check_wallclock_in_test(path: &str, src: &Source) -> Vec<Finding> {
    const CLOCKS: &[&str] = &["Instant::now(", "SystemTime::now(", "SystemTime::"];
    let test_file = path.starts_with("tests/") || path.contains("/tests/");
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        if !(test_file || src.in_test[i]) || !contains_any(line, CLOCKS) {
            continue;
        }
        out.push(finding(
            "wallclock-in-test",
            path,
            i,
            "deterministic test paths must not read wall-clock time (it makes failures \
             unreproducible); drive the scenario with logical time or epochs instead"
                .to_owned(),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// raw-timing-outside-obs

fn check_raw_timing_outside_obs(path: &str, src: &Source) -> Vec<Finding> {
    const CLOCKS: &[&str] = &["Instant::now(", "SystemTime::now("];
    let mut out = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        // Test regions are wallclock-in-test's territory; double-reporting the
        // same line under two lint ids would force duplicate allow entries.
        if src.in_test[i] || !contains_any(line, CLOCKS) {
            continue;
        }
        out.push(finding(
            "raw-timing-outside-obs",
            path,
            i,
            "reads the wall clock directly in runtime code; timings taken this way are \
             invisible to the metrics registry and dodge the telemetry on/off gate.  Use \
             obs::Stopwatch (or an obs::Span around the region) instead"
                .to_owned(),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// lock-order

/// The protocol lock classes, by acquisition rank: the writer mutex strictly
/// before the epoch-registry mutex.  Patterns cover both direct `Mutex::lock`
/// receivers and the guard-returning helpers of `ServeGraph`/`EpochManager`
/// (including the registry-acquiring entry points reachable one call deep).
const LOCK_CLASSES: &[(&str, &[&str])] = &[
    ("writer", &[".writer.lock(", "self.writer()"]),
    (
        "epoch-registry",
        &[
            ".inner.lock(",
            ".manager.lock(",
            "self.lock()",
            "self.publish(",
            "self.pin()",
            ".epochs.publish(",
            ".epochs.pin(",
        ],
    ),
];

fn check_lock_order(path: &str, src: &Source) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    // Live let-bound guards: (class rank, depth at the binding statement).
    let mut held: Vec<(usize, i32)> = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        let start_depth = depth;
        let acquired: Vec<usize> = LOCK_CLASSES
            .iter()
            .enumerate()
            .filter(|(_, (_, patterns))| contains_any(line, patterns))
            .map(|(rank, _)| rank)
            .collect();
        if !src.in_test[i] {
            for &rank in &acquired {
                if let Some(&(held_rank, _)) = held.iter().find(|&&(h, _)| h >= rank) {
                    out.push(finding(
                        "lock-order",
                        path,
                        i,
                        format!(
                            "acquires the {} lock while the {} lock is held: the epoch \
                             protocol's order is writer -> epoch-registry, and re-entrant \
                             acquisition self-deadlocks.  Release the guard first \
                             (scope it in a block)",
                            LOCK_CLASSES[rank].0, LOCK_CLASSES[held_rank].0,
                        ),
                    ));
                }
            }
        }
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    while held.last().is_some_and(|&(_, g)| depth < g) {
                        held.pop();
                    }
                }
                _ => {}
            }
        }
        if line.contains("let ") {
            for &rank in &acquired {
                held.push((rank, start_depth));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze;

    fn run(lint_id: &str, path: &str, src: &str) -> Vec<Finding> {
        let lint = all().into_iter().find(|l| l.id == lint_id).unwrap();
        assert!((lint.applies)(path), "{path} must be in scope of {lint_id}");
        (lint.check)(path, &analyze(src))
    }

    #[test]
    fn hot_path_unwraps_are_flagged_outside_tests_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 { x.expect(\"t\") }\n}\n";
        let findings = run("unwrap-in-hot-path", "crates/engine/src/steps/hop.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn guard_scoped_unwraps_are_flagged_until_release() {
        let src = "fn f(m: &std::sync::Mutex<Vec<u32>>) {\n    {\n        let g = m.lock().unwrap_or_else(|p| p.into_inner());\n        g.first().expect(\"under guard\");\n    }\n    maybe().unwrap();\n}\n";
        let findings = run("unwrap-under-lock", "crates/live/src/x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4, "the post-release unwrap on line 6 is fine");
    }

    #[test]
    fn direct_lock_unwrap_is_flagged_even_unbound() {
        let findings = run(
            "unwrap-under-lock",
            "crates/live/src/x.rs",
            "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
        );
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// calls execute_text( in prose\nconst HELP: &str = \"execute_query(...)\";\n";
        assert!(run("deprecated-entry-point", "crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn wallclock_fires_in_test_files_and_test_modules_only() {
        let src = "fn prod() { let _ = std::time::Instant::now(); }\n";
        assert!(run("wallclock-in-test", "crates/bench/src/lib.rs", src).is_empty());
        assert_eq!(run("wallclock-in-test", "tests/determinism.rs", src).len(), 1);
        let gated =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert_eq!(run("wallclock-in-test", "crates/x/src/lib.rs", gated).len(), 1);
    }

    #[test]
    fn raw_timing_fires_in_runtime_code_but_leaves_tests_to_wallclock_lint() {
        let src = "fn prod() { let _ = std::time::Instant::now(); }\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        let findings = run("raw-timing-outside-obs", "crates/engine/src/executor.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1, "the test-gated read belongs to wallclock-in-test");
        let sanctioned = "fn prod() { let w = obs::Stopwatch::start(); let _ = w.elapsed(); }\n";
        assert!(run("raw-timing-outside-obs", "crates/live/src/query.rs", sanctioned).is_empty());
        let lint = all().into_iter().find(|l| l.id == "raw-timing-outside-obs").unwrap();
        assert!(!(lint.applies)("crates/obs/src/span.rs"), "obs itself owns the clock");
    }

    #[test]
    fn lock_order_accepts_writer_then_registry_and_rejects_the_reverse() {
        let good = "fn ingest(&self) {\n    let mut writer = self.writer();\n    self.publish(&writer);\n}\n";
        assert!(run("lock-order", "crates/live/src/serve.rs", good).is_empty());
        let bad = "fn bad(&self) {\n    let inner = self.lock();\n    let w = self.writer();\n}\n";
        assert_eq!(run("lock-order", "crates/live/src/epoch.rs", bad).len(), 1);
        let reentrant =
            "fn twice(&self) {\n    let a = self.lock();\n    let b = self.lock();\n}\n";
        assert_eq!(run("lock-order", "crates/live/src/epoch.rs", reentrant).len(), 1);
    }

    #[test]
    fn block_scoped_guards_release_for_lock_order() {
        let src = "fn republish(&self) {\n    let x = {\n        let inner = self.lock();\n        inner.current\n    };\n    self.publish(x)\n}\n";
        assert!(run("lock-order", "crates/live/src/epoch.rs", src).is_empty());
    }
}
