//! The `--plans` mode: run the engine's static plan auditor
//! ([`engine::plan::audit`]) over every built-in benchmark plan, so a compiler
//! regression that produces a malformed `EnginePlan` fails CI before any
//! benchmark executes it.

use trpq::queries::QueryId;

/// Audits Q1–Q12.  Returns true on success.
pub fn run() -> bool {
    let mut failed = false;
    for &id in QueryId::ALL.iter() {
        let plan_set = engine::queries::plan_for(id);
        match engine::audit(&plan_set) {
            Ok(report) => {
                let hops: Vec<String> = report
                    .hop_depths
                    .iter()
                    .map(|d| d.map_or_else(|| "closure".to_owned(), |h| h.to_string()))
                    .collect();
                println!(
                    "plan-audit: {id:?} ok — {} alternative(s), hop depth [{}], closure nesting {}",
                    plan_set.plans.len(),
                    hops.join(", "),
                    report.max_closure_depth,
                );
            }
            Err(error) => {
                failed = true;
                eprintln!("plan-audit: {id:?} FAILED:\n{error}");
            }
        }
    }
    if failed {
        eprintln!("plan-audit: at least one built-in plan is malformed");
    } else {
        println!("plan-audit: all {} built-in plans pass", QueryId::ALL.len());
    }
    !failed
}
