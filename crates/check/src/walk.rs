//! Workspace file discovery: every `.rs` file that belongs to this repo's own
//! code, in deterministic order.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names that are never scanned: build output, the vendored
/// dependency shims (not this repo's code), VCS metadata.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Returns the workspace-relative paths (forward-slashed) of every `.rs` file
/// to lint, sorted.  The check crate's own fixtures are excluded — each one
/// exists to *violate* a lint and is exercised by `--self-test` instead.
pub fn rust_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    collect(root, root, &mut out);
    out.sort();
    out
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || is_fixture_dir(root, &path) {
                continue;
            }
            collect(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Some(rel) = relative(root, &path) {
                out.push(rel);
            }
        }
    }
}

fn is_fixture_dir(root: &Path, path: &Path) -> bool {
    relative(root, path).as_deref() == Some("crates/check/fixtures")
}

fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel: PathBuf = path.strip_prefix(root).ok()?.to_path_buf();
    let mut parts: Vec<String> = Vec::new();
    for component in rel.components() {
        parts.push(component.as_os_str().to_str()?.to_owned());
    }
    Some(parts.join("/"))
}
