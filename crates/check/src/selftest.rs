//! The `--self-test` mode: deny-by-default is only trustworthy if every lint
//! demonstrably still fires.  Each lint ships a fixture under
//! `crates/check/fixtures/` seeding exactly the violation it exists to catch;
//! this mode runs each lint over its fixture (under the fixture's pretend
//! path, bypassing the allowlist) and fails if any lint goes blind.
//!
//! The engine-side plan auditor is self-tested the same way, against a
//! deliberately broken in-memory plan.

use std::path::Path;

use engine::plan::{EnginePlan, MicroOp, Segment};

use crate::{lexer, lints};

/// Runs every self-test.  Returns true on success.
pub fn run(root: &Path) -> bool {
    let mut ok = true;
    for lint in lints::all() {
        let fixture = root.join("crates/check/fixtures").join(lint.fixture);
        let content = match std::fs::read_to_string(&fixture) {
            Ok(content) => content,
            Err(error) => {
                eprintln!("self-test: {}: cannot read {}: {error}", lint.id, fixture.display());
                ok = false;
                continue;
            }
        };
        if !(lint.applies)(lint.fixture_path) {
            eprintln!(
                "self-test: {}: fixture path {} is out of the lint's own scope",
                lint.id, lint.fixture_path
            );
            ok = false;
            continue;
        }
        let findings = (lint.check)(lint.fixture_path, &lexer::analyze(&content));
        if findings.is_empty() {
            eprintln!(
                "self-test: {}: FAILED — the seeded violation in {} was not caught",
                lint.id, lint.fixture
            );
            ok = false;
        } else {
            println!(
                "self-test: {}: caught {} seeded violation(s) at line(s) [{}]",
                lint.id,
                findings.len(),
                findings.iter().map(|f| f.line.to_string()).collect::<Vec<_>>().join(", "),
            );
        }
    }
    ok &= plan_audit_rejects_broken_plan();
    ok &= crate::semantic::self_test();
    ok
}

/// A two-segment plan with no temporal link is structurally impossible; the
/// auditor must reject it with a diagnostic naming the arity mismatch.
fn plan_audit_rejects_broken_plan() -> bool {
    let broken = EnginePlan {
        segments: vec![
            Segment { ops: vec![MicroOp::Bind(0)] },
            Segment { ops: vec![MicroOp::Bind(1)] },
        ],
        links: Vec::new(),
    };
    let issues = engine::audit_plan(&broken, None);
    if issues.is_empty() {
        eprintln!("self-test: plan-audit: FAILED — a 2-segment, 0-link plan was not rejected");
        false
    } else {
        println!("self-test: plan-audit: broken plan rejected ({})", issues[0].message);
        true
    }
}
