//! A minimal Rust source preprocessor for the lint passes.
//!
//! [`analyze`] blanks the contents of comments, string literals and character
//! literals (preserving line structure) and computes which lines fall inside
//! `#[cfg(test)]`-gated regions.  The token-level lints then match plain
//! substrings without being fooled by text in docs, literals, or test code.
//!
//! This is deliberately not a real lexer: it only needs to be sound on the
//! constructs this workspace actually uses, and to *never* report a line
//! number off by one (blanking preserves every newline).

/// A preprocessed source file.
pub struct Source {
    /// Blanked source lines (0-indexed internally; findings report 1-indexed).
    pub lines: Vec<String>,
    /// `in_test[i]` is true if line `i` lies inside a `#[cfg(test)]` region
    /// (including `#[cfg(all(test, …))]` and the attribute line itself).
    pub in_test: Vec<bool>,
}

/// Blanks `src` and computes its test regions.
pub fn analyze(src: &str) -> Source {
    let blanked = blank(src);
    let lines: Vec<String> = blanked.lines().map(str::to_owned).collect();
    let in_test = test_regions(&lines);
    Source { lines, in_test }
}

/// Replaces the contents of comments and literals with spaces, keeping
/// newlines (and therefore line numbers) intact.
fn blank(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i = blank_block_comment(b, i, &mut out);
            }
            b'"' => i = blank_string(b, i, &mut out),
            b'r' if !ident_before(b, i) && raw_quote_offset(b, i + 1).is_some() => {
                i = blank_raw_string(b, i, &mut out);
            }
            b'b' if !ident_before(b, i) && b.get(i + 1) == Some(&b'"') => {
                out.push(b' ');
                i = blank_string(b, i + 1, &mut out);
            }
            b'b' if !ident_before(b, i)
                && b.get(i + 1) == Some(&b'r')
                && raw_quote_offset(b, i + 2).is_some() =>
            {
                i = blank_raw_string(b, i, &mut out);
            }
            // C-string literals (Rust 1.77+).  `c"…"` escapes like a normal
            // string; `cr"…"` / `cr#"…"#` are raw.  Without these arms the `c`
            // is consumed as code and the `r` fails `ident_before`, so the
            // literal is lexed as a *plain* string: an inner `"` of a raw
            // C-string then terminates it early and trailing literal content
            // leaks into the blanked output as lintable "code".
            b'c' if !ident_before(b, i) && b.get(i + 1) == Some(&b'"') => {
                out.push(b' ');
                i = blank_string(b, i + 1, &mut out);
            }
            b'c' if !ident_before(b, i)
                && b.get(i + 1) == Some(&b'r')
                && raw_quote_offset(b, i + 2).is_some() =>
            {
                i = blank_raw_string(b, i, &mut out);
            }
            b'\'' => i = blank_char_or_lifetime(b, i, &mut out),
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

fn blank_block_comment(b: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    let mut depth = 1;
    out.extend_from_slice(b"  ");
    i += 2;
    while i < b.len() && depth > 0 {
        if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
            depth += 1;
            out.extend_from_slice(b"  ");
            i += 2;
        } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
            depth -= 1;
            out.extend_from_slice(b"  ");
            i += 2;
        } else {
            out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
            i += 1;
        }
    }
    i
}

/// Blanks a normal string literal starting at the opening quote.
fn blank_string(b: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    out.push(b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                out.push(b' ');
                if let Some(&escaped) = b.get(i + 1) {
                    out.push(if escaped == b'\n' { b'\n' } else { b' ' });
                }
                i += 2;
            }
            b'"' => {
                out.push(b'"');
                return i + 1;
            }
            b'\n' => {
                out.push(b'\n');
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

/// If `b[from..]` is `#*"` (the hash run and opening quote of a raw string),
/// returns the offset of the quote relative to `from`.
fn raw_quote_offset(b: &[u8], from: usize) -> Option<usize> {
    let mut k = from;
    while b.get(k) == Some(&b'#') {
        k += 1;
    }
    (b.get(k) == Some(&b'"')).then(|| k - from)
}

/// Blanks a raw (or raw byte / raw C) string literal starting at the
/// `r`/`br`/`cr` prefix.
fn blank_raw_string(b: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    let hash_from = if b[i] == b'r' { i + 1 } else { i + 2 };
    let hashes = raw_quote_offset(b, hash_from).unwrap_or(0);
    let body = hash_from + hashes + 1;
    // Prefix (r##") becomes spaces too — nothing in it is lintable.
    for _ in i..body {
        out.push(b' ');
    }
    i = body;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#')
        {
            for _ in 0..=hashes {
                out.push(b' ');
            }
            return i + 1 + hashes;
        }
        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
        i += 1;
    }
    i
}

/// Distinguishes char literals (blanked) from lifetimes (kept).
fn blank_char_or_lifetime(b: &[u8], i: usize, out: &mut Vec<u8>) -> usize {
    if b.get(i + 1) == Some(&b'\\') {
        // Escaped char literal: blank through the closing quote.
        let mut j = i + 2;
        while j < b.len() && b[j] != b'\'' && b[j] != b'\n' && j - i < 12 {
            j += 1;
        }
        if b.get(j) == Some(&b'\'') {
            for _ in i..=j {
                out.push(b' ');
            }
            return j + 1;
        }
    } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
        // Plain one-byte char literal like 'x'.
        out.extend_from_slice(b"   ");
        return i + 3;
    }
    // A lifetime (or a multi-byte char literal, which is rare enough that
    // leaving its bytes as "code" is harmless — no lint pattern matches it).
    out.push(b'\'');
    i + 1
}

fn ident_before(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Marks the lines covered by `#[cfg(test)]`-gated items, by brace matching
/// from the first `{` after the attribute.
fn test_regions(lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i32 = 0;
    // Depths at which a test-gated item's body opened.
    let mut regions: Vec<i32> = Vec::new();
    // Saw the attribute; waiting for the item's opening brace.
    let mut pending = false;
    for (idx, line) in lines.iter().enumerate() {
        if pending || !regions.is_empty() {
            in_test[idx] = true;
        }
        if line.contains("#[cfg(") && mentions_test(line) {
            pending = true;
            in_test[idx] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending {
                        regions.push(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                // `#[cfg(test)] use …;` — an item without a body.
                ';' if pending => pending = false,
                _ => {}
            }
        }
    }
    in_test
}

/// True if the line contains `test` as a standalone word (so
/// `#[cfg(feature = "testing")]` — blanked anyway — or `latest` don't count).
fn mentions_test(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(at) = line[from..].find("test") {
        let start = from + at;
        let end = start + "test".len();
        let before =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let after =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before && after {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_comments_are_blanked() {
        let src =
            "let s = \"x.unwrap()\"; // .expect(boom)\nlet c = 'u'; let r = r#\".lock()\"#;\n";
        let out = blank(src);
        assert!(!out.contains(".unwrap()"));
        assert!(!out.contains(".expect("));
        assert!(!out.contains(".lock()"));
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn raw_and_c_string_variants_are_blanked() {
        // Every prefix form: r, r#, br#, c, cr#.  The inner quotes of the
        // hashed forms must not terminate the literal early.
        let src = concat!(
            "let a = r\".unwrap()\";\n",
            "let b = r#\"has \"quotes\" then .unwrap()\"#;\n",
            "let c = br#\"bytes \"q\" then .lock()\"#;\n",
            "let d = c\".expect(boom)\";\n",
            "let e = cr#\"raw c \"q\" then .unwrap().lock()\"#;\n",
        );
        let out = blank(src);
        assert!(!out.contains(".unwrap()"), "{out}");
        assert!(!out.contains(".lock()"), "{out}");
        assert!(!out.contains(".expect("), "{out}");
        assert_eq!(out.lines().count(), src.lines().count());
        // Identifiers merely *ending* in these prefix letters stay code.
        let kept = blank("let cedric = magic(cedric);\nlet fabric = r_value;\n");
        assert!(kept.contains("magic(cedric)"));
        assert!(kept.contains("r_value"));
    }

    #[test]
    fn lexer_fixture_file_produces_no_lintable_tokens() {
        // The committed fixture seeds every lint trigger inside string
        // literals only; after blanking, none may survive as code.
        let fixture = include_str!("../fixtures/lexer_raw_strings.rs");
        let analyzed = analyze(fixture);
        for needle in [".unwrap()", ".lock()", ".expect(", "Instant::now()"] {
            assert!(
                !analyzed.lines.iter().any(|line| line.contains(needle)),
                "literal content `{needle}` leaked out of a blanked string"
            );
        }
    }

    #[test]
    fn lifetimes_survive_blanking() {
        let out = blank("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(out.contains("<'a>"));
        assert!(out.contains("&'a str"));
    }

    #[test]
    fn escaped_chars_and_multiline_strings_keep_line_numbers() {
        let src = "let a = '\\n';\nlet b = \"line one\nline two\";\nlet c = 1;\n";
        let out = blank(src);
        assert_eq!(out.lines().count(), 4, "the newline inside the string is preserved");
        assert!(out.lines().nth(3).unwrap().contains("let c = 1;"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n\nfn after() {}\n";
        let analyzed = analyze(src);
        assert!(!analyzed.in_test[0]);
        assert!(analyzed.in_test[2], "the attribute line counts");
        assert!(analyzed.in_test[3]);
        assert!(analyzed.in_test[4]);
        assert!(analyzed.in_test[5]);
        assert!(!analyzed.in_test[7]);
    }

    #[test]
    fn cfg_all_test_counts_but_feature_testing_does_not() {
        let gated = analyze("#[cfg(all(test, feature = \"slow\"))]\nmod t {\n    fn f() {}\n}\n");
        assert!(gated.in_test[2]);
        let free = analyze("#[cfg(feature = \"testing\")]\nmod t {\n    fn f() {}\n}\n");
        assert!(
            !free.in_test[2],
            "feature strings are blanked and 'testing' is not the word 'test'"
        );
    }
}
