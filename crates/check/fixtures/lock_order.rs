//! Seeded violation for the `lock-order` lint (never compiled; exercised by
//! `cargo run -p check -- --self-test`).

impl EpochManager {
    pub fn refresh_under_registry(&self) {
        let inner = self.lock();
        // VIOLATION: acquires the writer mutex while holding the epoch
        // registry — the inverse of the protocol's writer -> registry order,
        // deadlocking against a concurrent ingest.
        let mut writer = self.writer();
        writer.refresh_all();
        drop(inner);
    }
}
