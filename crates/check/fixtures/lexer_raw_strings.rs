// Lexer fixture: every lint-trigger substring below lives inside a string
// literal — raw, raw-hashed, byte-raw, C, or raw-C — so after blanking, *no*
// lint may fire on this file.  Before the C-string arms were added to
// `lexer::blank`, the `cr#"…"#` literal was lexed as a plain string: its inner
// `"` terminated the literal early and the trailing `.unwrap()` / `.lock()`
// text leaked into the blanked output as lintable code.
pub fn raw_string_literals_are_not_code() -> Vec<&'static str> {
    vec![
        r".unwrap() inside a plain raw string",
        r#"has "quotes" and then .unwrap() and .lock() inside raw-hashed"#,
        r"std::time::Instant::now() named in a raw string",
    ]
}

pub fn byte_and_c_string_literals_are_not_code() -> (&'static [u8], &'static core::ffi::CStr) {
    let bytes: &[u8] = br#"a "quoted" .expect(leak) inside a byte raw string"#;
    let c_plain = c"a C string mentioning .unwrap()";
    let c_raw = cr#"a raw C string with "quotes" then .unwrap().lock() after them"#;
    let _ = c_plain;
    (bytes, c_raw)
}
