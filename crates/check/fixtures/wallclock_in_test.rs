//! Seeded violation for the `wallclock-in-test` lint (never compiled;
//! exercised by `cargo run -p check -- --self-test`).

#[test]
fn flaky_timing() {
    // VIOLATION: wall-clock reads make test failures unreproducible.
    let started = std::time::Instant::now();
    assert!(started.elapsed().as_millis() < 100);
}
