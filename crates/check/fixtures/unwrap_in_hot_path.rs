//! Seeded violation for the `unwrap-in-hot-path` lint (never compiled;
//! exercised by `cargo run -p check -- --self-test`).

pub fn first_row(rows: &[u32]) -> u32 {
    // VIOLATION: a panic here would take down a whole executor worker.
    rows.first().copied().unwrap()
}
