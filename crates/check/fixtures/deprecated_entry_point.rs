//! Seeded violation for the `deprecated-entry-point` lint (never compiled;
//! exercised by `cargo run -p check -- --self-test`).

pub fn old_api(graph: &engine::GraphRelations) -> usize {
    // VIOLATION: calls a deprecated one-shot wrapper instead of engine::Query.
    let out = engine::execute_text("MATCH (x:Person) ON g", graph, &Default::default());
    out.map(|table| table.len()).unwrap_or(0)
}
