//! Seeded violations for the `unwrap-under-lock` lint (never compiled;
//! exercised by `cargo run -p check -- --self-test`).

use std::sync::Mutex;

pub fn wedge(state: &Mutex<Vec<u64>>) -> u64 {
    // VIOLATION: panics on a poisoned lock instead of recovering.
    let guard = state.lock().unwrap();
    // VIOLATION: panicking while the guard is live poisons the mutex for
    // every other thread.
    guard.first().copied().expect("non-empty while holding the guard")
}
