//! Seeded violation for the `live-graph-discipline` lint (never compiled;
//! exercised by `cargo run -p check -- --self-test`).

use live::LiveGraph;
use tgraph::Interval;

pub fn rogue_graph() -> LiveGraph {
    // VIOLATION: constructs a LiveGraph directly, bypassing ServeGraph's
    // write-then-publish discipline — readers can never pin its state.
    LiveGraph::new(Interval::of(1, 10))
}
