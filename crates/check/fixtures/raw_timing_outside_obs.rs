//! Seeded violation for the `raw-timing-outside-obs` lint (never compiled;
//! exercised by `cargo run -p check -- --self-test`).

pub fn measure(rows: &[u64]) -> std::time::Duration {
    // VIOLATION: bare wall-clock read in runtime code; obs::Stopwatch is the
    // sanctioned wrapper, and it feeds the metrics registry.
    let started = std::time::Instant::now();
    let _ = rows.iter().sum::<u64>();
    started.elapsed()
}
