//! Micro-benchmarks of the dataflow substrate: temporally-aligned hash joins versus a
//! naive nested-loop join, and the parallel chunked executor.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::{interval_hash_join, par_chunk_flat_map, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tgraph::Interval;

#[derive(Clone)]
struct Row {
    key: u32,
    interval: Interval,
}

fn rows(n: usize, keys: u32, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let start = rng.gen_range(0..44u64);
            Row {
                key: rng.gen_range(0..keys),
                interval: Interval::of(start, start + rng.gen_range(0..4u64)),
            }
        })
        .collect()
}

fn nested_loop(left: &[Row], right: &[Row]) -> usize {
    let mut count = 0usize;
    for l in left {
        for r in right {
            if l.key == r.key && l.interval.overlaps(&r.interval) {
                count += 1;
            }
        }
    }
    count
}

fn bench_joins(c: &mut Criterion) {
    let left = rows(4_000, 500, 1);
    let right = rows(4_000, 500, 2);

    let mut group = c.benchmark_group("joins_4k_x_4k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    group.bench_function("interval_hash_join", |b| {
        b.iter(|| {
            interval_hash_join(&left, &right, |l| l.key, |r| r.key, |l| l.interval, |r| r.interval)
                .len()
        })
    });
    group.bench_function("nested_loop", |b| b.iter(|| nested_loop(&left, &right)));
    group.finish();

    let items: Vec<u64> = (0..200_000).collect();
    let mut group = c.benchmark_group("parallel_executor_200k_items");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for threads in [1usize, 4, 8] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                par_chunk_flat_map(&items, Parallelism::with_threads(threads), |chunk| {
                    chunk.iter().map(|x| x.wrapping_mul(2654435761)).collect::<Vec<_>>()
                })
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
