//! Scaling micro-benchmark: execution time of a structural query (Q5) and a temporal
//! query (Q9) as the graph grows — the Criterion counterpart of Figure 2.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{ExecutionOptions, GraphRelations};
use trpq::queries::QueryId;
use workload::ContactTracingConfig;

fn bench_scaling(c: &mut Criterion) {
    let options = ExecutionOptions::default();
    let mut group = c.benchmark_group("graph_size_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for persons in [200usize, 400, 800] {
        let config = ContactTracingConfig::with_persons(persons).with_positivity_rate(0.05);
        let graph = GraphRelations::from_itpg(&workload::generate(&config));
        for id in [QueryId::Q5, QueryId::Q9] {
            group.bench_with_input(BenchmarkId::new(id.name(), persons), &persons, |b, _| {
                b.iter(|| {
                    engine::Query::benchmark(id)
                        .with_options(options)
                        .run(&graph)
                        .stats()
                        .output_rows
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
