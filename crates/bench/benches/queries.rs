//! Criterion micro-benchmarks of the benchmark queries Q1–Q12 over a small synthetic
//! contact-tracing graph (the per-query counterpart of Table II).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use engine::{ExecutionOptions, GraphRelations};
use trpq::queries::QueryId;
use workload::ContactTracingConfig;

fn bench_queries(c: &mut Criterion) {
    let config = ContactTracingConfig::with_persons(600).with_positivity_rate(0.02);
    let graph = GraphRelations::from_itpg(&workload::generate(&config));
    let options = ExecutionOptions::default();

    let mut group = c.benchmark_group("queries_600_persons");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for id in QueryId::ALL {
        group.bench_function(id.name(), |b| {
            b.iter(|| {
                engine::Query::benchmark(id).with_options(options).run(&graph).stats().output_rows
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
