//! Ablation: the interval-based engine versus the point-based reference evaluator of
//! Theorem C.1 on the Figure 1 graph and a small synthetic graph.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use engine::{ExecutionOptions, GraphRelations};
use trpq::queries::QueryId;
use trpq::rewrite::rewrite_match;
use workload::{figure1, ContactTracingConfig};

fn bench_evaluators(c: &mut Criterion) {
    let itpg = figure1();
    let tpg = itpg.to_tpg();
    let relations = GraphRelations::from_itpg(&itpg);
    let options = ExecutionOptions::sequential();

    let mut group = c.benchmark_group("figure1_engine_vs_reference");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for id in [QueryId::Q6, QueryId::Q9, QueryId::Q12] {
        let rewritten = rewrite_match(&id.clause()).unwrap();
        group.bench_function(format!("engine/{}", id.name()), |b| {
            b.iter(|| {
                engine::Query::benchmark(id)
                    .with_options(options)
                    .run(&relations)
                    .stats()
                    .output_rows
            })
        });
        group.bench_function(format!("reference_tpg/{}", id.name()), |b| {
            b.iter(|| trpq::eval::tpg::eval_path(&rewritten.path, &tpg).len())
        });
    }
    group.finish();

    // A slightly larger synthetic graph to show how quickly the point-based reference
    // evaluator falls behind the interval engine.
    let mut config = ContactTracingConfig::with_persons(60).with_positivity_rate(0.2);
    config.trajectories.num_time_points = 24;
    let synthetic = workload::generate(&config);
    let synthetic_tpg = synthetic.to_tpg();
    let synthetic_relations = GraphRelations::from_itpg(&synthetic);
    let mut group = c.benchmark_group("synthetic_60_persons");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let rewritten = rewrite_match(&QueryId::Q9.clause()).unwrap();
    group.bench_function("engine/Q9", |b| {
        b.iter(|| {
            engine::Query::benchmark(QueryId::Q9)
                .with_options(options)
                .run(&synthetic_relations)
                .stats()
                .output_rows
        })
    });
    group.bench_function("reference_tpg/Q9", |b| {
        b.iter(|| trpq::eval::tpg::eval_path(&rewritten.path, &synthetic_tpg).len())
    });
    group.finish();
}

criterion_group!(benches, bench_evaluators);
criterion_main!(benches);
