//! Shared helpers for the benchmark harness: building graphs at the paper's scale
//! factors (optionally scaled down), and formatting result tables.
//!
//! Every experiment binary honours two environment variables:
//!
//! * `TPATH_SCALE_DIVISOR` — divides the person counts of Table I (default 25, so the
//!   sweep runs 50 … 4,000 persons instead of 1,000 … 100,000); set it to 1 to
//!   reproduce the paper's sizes exactly if you have the memory and patience.
//! * `TPATH_THREADS` — the number of worker threads (default: all cores).

use std::time::Instant;

use engine::{ExecutionOptions, GraphRelations, JoinStrategy, QueryOutput};
use trpq::parser::MatchClause;
use trpq::queries::QueryId;
use workload::{ContactTracingConfig, ScaleFactor};

pub mod json;

/// Name of the reachability workload in perf reports: transitive contact chains
/// through the structural Kleene closure — the query family unlocked by the engine's
/// fixpoint operator (it has no Q-number in the paper).
pub const REACH_QUERY_NAME: &str = "REACH";

/// Text of the [`REACH_QUERY_NAME`] workload.
pub const REACH_QUERY_TEXT: &str = "MATCH (x:Person {risk = 'high'})\
                                    -/(FWD/:meets/FWD)*/-(y:Person) ON contact_tracing";

/// Name of the recurring-contact workload in perf reports: chains of meetings each
/// followed by a step forward in time, ending on a positive test — *mixed*
/// structural/temporal repetition, executed by the engine's time-aware closure.
pub const RECUR_QUERY_NAME: &str = "RECUR";

/// Text of the [`RECUR_QUERY_NAME`] workload.
pub const RECUR_QUERY_TEXT: &str = "MATCH (x:Person {risk = 'high'})\
                                    -/(FWD/:meets/FWD/NEXT)*/NEXT*/-({test = 'pos'}) \
                                    ON contact_tracing";

/// The scale divisor taken from `TPATH_SCALE_DIVISOR` (default 25).
pub fn scale_divisor() -> usize {
    std::env::var("TPATH_SCALE_DIVISOR").ok().and_then(|s| s.parse().ok()).unwrap_or(25)
}

/// The join strategy taken from `TPATH_JOIN_STRATEGY` (`hash` | `merge` | `auto`,
/// default `auto`).
pub fn join_strategy() -> JoinStrategy {
    std::env::var("TPATH_JOIN_STRATEGY").ok().and_then(|s| s.parse().ok()).unwrap_or_default()
}

/// The execution options taken from `TPATH_THREADS` (default: all cores) and
/// `TPATH_JOIN_STRATEGY` (default: auto).
pub fn execution_options() -> ExecutionOptions {
    let options = match std::env::var("TPATH_THREADS").ok().and_then(|s| s.parse().ok()) {
        Some(threads) => ExecutionOptions::with_threads(threads),
        None => ExecutionOptions::default(),
    };
    options.with_strategy(join_strategy())
}

/// The peak resident set size of this process in bytes (`VmHWM`), if the platform
/// exposes it through `/proc/self/status`.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The generator configuration for one scale factor under the current divisor.
pub fn config_at(scale: ScaleFactor) -> ContactTracingConfig {
    scale.scaled_config(scale_divisor())
}

/// Generates the graph for one scale factor and loads it into the engine, reporting
/// how long both took.
pub fn build_graph(scale: ScaleFactor) -> (GraphRelations, BuildReport) {
    build_graph_with(config_at(scale))
}

/// Generates a graph from an explicit configuration.
pub fn build_graph_with(config: ContactTracingConfig) -> (GraphRelations, BuildReport) {
    let start = Instant::now();
    let itpg = workload::generate(&config);
    let generate_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let relations = GraphRelations::from_itpg(&itpg);
    let load_seconds = start.elapsed().as_secs_f64();
    let stats = relations.stats();
    (
        relations,
        BuildReport {
            persons: config.trajectories.num_persons,
            nodes: stats.nodes,
            edges: stats.edges,
            temporal_nodes: stats.temporal_nodes,
            temporal_edges: stats.temporal_edges,
            generate_seconds,
            load_seconds,
        },
    )
}

/// Sizes and build times of one generated graph (one row of Table I).
#[derive(Debug, Clone, Copy)]
pub struct BuildReport {
    /// Number of persons requested from the generator.
    pub persons: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of temporal node states.
    pub temporal_nodes: usize,
    /// Number of temporal edge states.
    pub temporal_edges: usize,
    /// Seconds spent generating the trajectories and the ITPG.
    pub generate_seconds: f64,
    /// Seconds spent loading the ITPG into the engine relations.
    pub load_seconds: f64,
}

/// One measured query execution (one row of Table II).
#[derive(Debug, Clone, Copy)]
pub struct QueryMeasurement {
    /// Interval-based time (Steps 1–2), in seconds.
    pub interval_seconds: f64,
    /// Total time (Steps 1–3), in seconds.
    pub total_seconds: f64,
    /// Number of interval-level intermediate matches after Steps 1–2.
    pub interval_rows: usize,
    /// Output size in binding-table rows.
    pub output_size: usize,
}

/// Runs one of the paper's benchmark queries and records its measurements.
pub fn measure(
    id: QueryId,
    graph: &GraphRelations,
    options: &ExecutionOptions,
) -> QueryMeasurement {
    let answers = engine::Query::benchmark(id).with_options(*options).run(graph);
    summarize(answers.into_output().expect("the default mode materialises"))
}

/// Compiles and runs a query given as a parsed clause — for harness workloads beyond
/// Q1–Q12, such as the [`REACH_QUERY_TEXT`] reachability query.
pub fn measure_clause(
    clause: &MatchClause,
    graph: &GraphRelations,
    options: &ExecutionOptions,
) -> QueryMeasurement {
    let answers = engine::Query::from_clause(clause)
        .expect("harness queries compile")
        .with_options(*options)
        .run(graph);
    summarize(answers.into_output().expect("the default mode materialises"))
}

fn summarize(out: QueryOutput) -> QueryMeasurement {
    QueryMeasurement {
        interval_seconds: out.stats.interval_time.as_secs_f64(),
        total_seconds: out.stats.total_time.as_secs_f64(),
        interval_rows: out.stats.interval_rows,
        output_size: out.stats.output_rows,
    }
}

/// Prints the standard experiment preamble.
pub fn print_preamble(experiment: &str) {
    println!("# {experiment}");
    println!(
        "# scale divisor = {} (set TPATH_SCALE_DIVISOR=1 for the paper's full sizes), threads = {}",
        scale_divisor(),
        execution_options().parallelism.threads()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_can_be_built_and_measured_at_the_smallest_scale() {
        let (graph, report) = build_graph_with(ContactTracingConfig::with_persons(120));
        assert_eq!(report.persons, 120);
        assert!(report.temporal_nodes >= report.nodes);
        let m = measure(QueryId::Q1, &graph, &ExecutionOptions::sequential());
        assert!(m.output_size > 0);
        assert!(m.total_seconds >= m.interval_seconds);
    }

    #[test]
    fn reach_query_parses_and_measures() {
        let (graph, _) = build_graph_with(ContactTracingConfig::with_persons(60));
        let clause = trpq::parser::parse_match(REACH_QUERY_TEXT).unwrap();
        let m = measure_clause(&clause, &graph, &ExecutionOptions::sequential());
        assert!(m.total_seconds >= m.interval_seconds);
    }

    #[test]
    fn recur_query_parses_and_measures() {
        let (graph, _) = build_graph_with(ContactTracingConfig::with_persons(60));
        let clause = trpq::parser::parse_match(RECUR_QUERY_TEXT).unwrap();
        let m = measure_clause(&clause, &graph, &ExecutionOptions::sequential());
        assert!(m.total_seconds >= m.interval_seconds);
    }

    #[test]
    fn environment_defaults_are_sane() {
        assert!(scale_divisor() >= 1);
        assert!(execution_options().parallelism.threads() >= 1);
        // TPATH_JOIN_STRATEGY is unset in the test environment, so the adaptive
        // default applies.
        assert_eq!(join_strategy(), JoinStrategy::Auto);
        // Peak RSS is best-effort: Some on Linux, None elsewhere — never a panic.
        let _ = peak_rss_bytes();
    }
}
