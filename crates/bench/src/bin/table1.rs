//! Regenerates Table I: the sizes of the experimental graphs G1–G10.
//!
//! `cargo run --release -p bench --bin table1`

use workload::ScaleFactor;

fn main() {
    bench::print_preamble("Table I: temporal property graphs used in experiments");
    println!(
        "{:<5} {:>9} {:>12} {:>14} {:>14} {:>12}",
        "graph", "# persons", "# edges", "# temp. nodes", "# temp. edges", "gen time (s)"
    );
    for scale in ScaleFactor::ALL {
        let (_, report) = bench::build_graph(scale);
        println!(
            "{:<5} {:>9} {:>12} {:>14} {:>14} {:>12.2}",
            scale.name(),
            report.nodes,
            report.edges,
            report.temporal_nodes,
            report.temporal_edges,
            report.generate_seconds
        );
    }
}
