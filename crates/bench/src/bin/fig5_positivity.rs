//! Regenerates Figure 5: execution time of Q6–Q12 as the positivity rate (query
//! selectivity) grows from 2% to 10%.
//!
//! `cargo run --release -p bench --bin fig5_positivity`

use trpq::queries::QueryId;
use workload::ScaleFactor;

fn main() {
    bench::print_preamble("Figure 5: effect of positivity rate on G10");
    let options = bench::execution_options();
    let queries = [
        QueryId::Q6,
        QueryId::Q7,
        QueryId::Q8,
        QueryId::Q9,
        QueryId::Q10,
        QueryId::Q11,
        QueryId::Q12,
    ];
    print!("{:<12}", "positivity");
    for id in queries {
        print!(" {:>9}", id.name());
    }
    println!();
    for rate in [0.02, 0.04, 0.06, 0.08, 0.10] {
        let config = bench::config_at(ScaleFactor::G10).with_positivity_rate(rate);
        let (graph, _) = bench::build_graph_with(config);
        print!("{:<12}", format!("{:.0}%", rate * 100.0));
        for id in queries {
            let m = bench::measure(id, &graph, &options);
            print!(" {:>9.4}", m.total_seconds);
        }
        println!();
    }
}
