//! `tpath-serve` — the concurrent query-serving demo binary.
//!
//! Stands up the MVCC serving stack end to end: a single writer streams the
//! contact-tracing workload into a [`live::serve::ServeGraph`] batch by batch
//! while a [`live::serve::Server`] worker pool answers registered reads and
//! ad-hoc queries (all three answer modes) from pinned epoch snapshots.  Every
//! response is verified against a from-scratch `execute` on the relations of
//! the epoch it pinned, and the binary exits non-zero on any divergence — so
//! it doubles as a standalone concurrency smoke test.
//!
//! ```text
//! cargo run --release -p bench --bin tpath-serve -- \
//!     [--persons N] [--time-points T] [--seed S] [--readers R] [--query TEXT]... \
//!     [--watch] [--dump-metrics PATH]
//! ```
//!
//! * `--persons`      — workload size (default 200).
//! * `--time-points`  — temporal domain length (default 24).
//! * `--seed`         — workload RNG seed (default the perf seed).
//! * `--readers`      — worker threads / concurrent clients (default 4).
//! * `--query`        — extra ad-hoc `MATCH …` text to serve alongside the
//!   registered set (repeatable; default none).
//! * `--watch`        — periodically scrape [`Request::Metrics`] while serving
//!   and print the counter/gauge lines (the live dashboard view).
//! * `--dump-metrics` — write the final Prometheus scrape to a file.
//!
//! The registered set is Q1, Q5, Q9 and the REACH closure; the join strategy
//! follows `TPATH_JOIN_STRATEGY` (`hash` | `merge` | `auto`, default `auto`).
//!
//! Besides verifying every answer, the binary scrapes its own metrics through
//! the server (mid-ingest, so queries are genuinely in flight) and fails if
//! the scrape does not cover the `tpath_engine_` / `tpath_live_` /
//! `tpath_epoch_` / `tpath_serve_` families — a standalone end-to-end check
//! of the observability layer.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use engine::{execute, execute_answers, AnswerMode, ExecutionOptions, PlanSet};
use live::serve::{MetricsFormat, Request, ServeGraph, Server};
use tgraph::{Interval, Itpg};
use trpq::queries::QueryId;
use workload::ContactTracingConfig;

/// Matches the `tpath-perf` seed so the served graph is the perf graph.
const SERVE_SEED: u64 = 0x7e_a7_05;

struct Args {
    persons: usize,
    time_points: u64,
    seed: u64,
    readers: usize,
    queries: Vec<String>,
    watch: bool,
    dump_metrics: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        persons: 200,
        time_points: 24,
        seed: SERVE_SEED,
        readers: 4,
        queries: Vec::new(),
        watch: false,
        dump_metrics: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--persons" => {
                args.persons = value("--persons")?.parse().map_err(|e| format!("{e}"))?
            }
            "--time-points" => {
                args.time_points = value("--time-points")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--readers" => {
                args.readers = value("--readers")?.parse().map_err(|e| format!("{e}"))?
            }
            "--query" => args.queries.push(value("--query")?),
            "--watch" => args.watch = true,
            "--dump-metrics" => args.dump_metrics = Some(value("--dump-metrics")?),
            "--help" | "-h" => {
                println!(
                    "tpath-serve [--persons N] [--time-points T] [--seed S] [--readers R] \
                     [--query TEXT]... [--watch] [--dump-metrics PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.readers == 0 {
        return Err("--readers must be at least 1".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("tpath-serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    let strategy = bench::join_strategy();
    let options = ExecutionOptions::with_threads(1).with_strategy(strategy);
    let config = ContactTracingConfig::with_persons(args.persons)
        .with_seed(args.seed)
        .with_time_points(args.time_points)
        .with_positivity_rate(0.1);
    let batches = workload::stream_contact_batches(&config);
    let mutations = workload::mutation_count(&batches);

    // The registered (maintained) set plus any ad-hoc texts from the CLI.
    let mut registered: Vec<(String, PlanSet)> = [QueryId::Q1, QueryId::Q5, QueryId::Q9]
        .into_iter()
        .map(|id| (id.name().to_string(), engine::queries::plan_for(id)))
        .collect();
    let reach = trpq::parser::parse_match(bench::REACH_QUERY_TEXT).expect("REACH parses");
    registered.push((
        bench::REACH_QUERY_NAME.to_string(),
        engine::compile(&reach).expect("REACH compiles"),
    ));
    let mut adhoc: Vec<(String, Arc<PlanSet>)> = Vec::new();
    for text in &args.queries {
        let clause = match trpq::parser::parse_match(text) {
            Ok(clause) => clause,
            Err(error) => {
                eprintln!("tpath-serve: cannot parse {text:?}: {error}");
                return ExitCode::FAILURE;
            }
        };
        match engine::compile(&clause) {
            Ok(plan) => adhoc.push((text.clone(), Arc::new(plan))),
            Err(error) => {
                eprintln!("tpath-serve: cannot compile {text:?}: {error}");
                return ExitCode::FAILURE;
            }
        }
    }

    let graph = Arc::new(ServeGraph::with_options(Itpg::empty(Interval::of(0, 1)), options));
    let ids: Vec<_> = registered.iter().map(|(_, plan)| graph.register(plan.clone())).collect();
    let plans: Vec<Arc<PlanSet>> =
        registered.iter().map(|(_, plan)| Arc::new(plan.clone())).collect();
    let server = Server::start(Arc::clone(&graph), args.readers);
    println!(
        "# tpath-serve: {} persons, {} batches, {} mutations, {} registered queries, \
         {} ad-hoc queries, {} workers, strategy {strategy}",
        args.persons,
        batches.len(),
        mutations,
        registered.len(),
        adhoc.len(),
        args.readers,
    );

    // Warm-up: one compiled request proves the pool serves queries and seeds
    // the engine metric families before the first scrape looks for them.
    server
        .submit(Request::Compiled { plan: Arc::clone(&plans[0]), mode: AnswerMode::Materialized })
        .wait()
        .expect("warm-up request");

    let done = AtomicBool::new(false);
    let agree = AtomicBool::new(true);
    let inflight_scrape_ok = AtomicBool::new(false);
    let requests = AtomicUsize::new(0);
    let start = Instant::now();
    let mut writer_seconds = 0.0f64;
    std::thread::scope(|scope| {
        if args.watch {
            let (server, done) = (&server, &done);
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_millis(400));
                    let Ok(scrape) =
                        server.submit(Request::Metrics(MetricsFormat::Prometheus)).wait()
                    else {
                        return;
                    };
                    let Some(text) = scrape.answer.metrics() else { return };
                    println!(
                        "# watch: epoch {:?}, {} refreshes ({} full), {} retained epochs, \
                         {} pinned readers",
                        scrape.epoch.epoch(),
                        scrape.health.refreshes,
                        scrape.health.fallback_refreshes,
                        scrape.health.retained_epochs,
                        scrape.health.pinned_readers,
                    );
                    // Counter and gauge lines only; the full histogram series
                    // go to --dump-metrics.
                    for line in text.lines() {
                        if !line.starts_with('#') && !line.contains("_bucket{") {
                            println!("# watch: {line}");
                        }
                    }
                }
            });
        }
        for reader in 0..args.readers {
            let (server, done, agree, requests) = (&server, &done, &agree, &requests);
            let (plans, ids, adhoc) = (&plans, &ids, &adhoc);
            scope.spawn(move || {
                let modes = [AnswerMode::Materialized, AnswerMode::Compact, AnswerMode::Enumerate];
                let mut round = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let index = (reader + round) % plans.len();
                    let mode = modes[round % modes.len()];
                    let maintained = server.submit(Request::Registered(ids[index])).wait().unwrap();
                    let expected = execute(&plans[index], maintained.epoch.relations(), &options);
                    if maintained.answer.rows().unwrap() != &expected.table {
                        agree.store(false, Ordering::Relaxed);
                    }
                    // Ad-hoc: the CLI queries when given, else the registered
                    // plans re-executed from scratch on the snapshot.
                    let plan = if adhoc.is_empty() {
                        Arc::clone(&plans[index])
                    } else {
                        Arc::clone(&adhoc[round % adhoc.len()].1)
                    };
                    let response = server
                        .submit(Request::Compiled { plan: Arc::clone(&plan), mode })
                        .wait()
                        .unwrap();
                    let ok = match mode {
                        AnswerMode::Materialized | AnswerMode::Enumerate => {
                            let expected = execute(&plan, response.epoch.relations(), &options);
                            response.answer.rows().unwrap() == &expected.table
                        }
                        AnswerMode::Compact => {
                            let expected = execute_answers(
                                &plan,
                                response.epoch.relations(),
                                &options.with_mode(mode),
                            )
                            .into_compact()
                            .expect("compact answers");
                            response.answer.compact().unwrap() == &expected
                        }
                    };
                    if !ok {
                        agree.store(false, Ordering::Relaxed);
                    }
                    requests.fetch_add(2, Ordering::Relaxed);
                    round += 1;
                    if finished {
                        break;
                    }
                }
            });
        }
        let midpoint = batches.len() / 2;
        for (index, batch) in batches.iter().enumerate() {
            let ingest_start = Instant::now();
            graph.ingest(batch).expect("streamed batches are valid against their prefix");
            writer_seconds += ingest_start.elapsed().as_secs_f64();
            if index == midpoint {
                // Scrape through the server while readers are mid-flight: the
                // exposition must already cover every subsystem's families.
                let scrape = server
                    .submit(Request::Metrics(MetricsFormat::Prometheus))
                    .wait()
                    .expect("in-flight metrics request");
                let covered = scrape.answer.metrics().is_some_and(families_covered);
                inflight_scrape_ok.store(covered, Ordering::Relaxed);
            }
        }
        done.store(true, Ordering::Release);
    });
    let serve_seconds = start.elapsed().as_secs_f64();
    let stats = graph.stats();
    let final_scrape = server
        .submit(Request::Metrics(MetricsFormat::Prometheus))
        .wait()
        .expect("final metrics request");
    let health = final_scrape.health;
    let metrics_text = final_scrape.answer.metrics().expect("metrics answer").to_string();
    drop(final_scrape);
    server.shutdown();

    let total_requests = requests.load(Ordering::Relaxed);
    println!(
        "# served {} requests in {:.3}s ({:.0} q/s) while ingesting {}/{} batches \
         ({:.3}s writer time, {:.0} mutations/s)",
        total_requests,
        serve_seconds,
        total_requests as f64 / serve_seconds.max(f64::EPSILON),
        graph.batches_applied(),
        batches.len(),
        writer_seconds,
        mutations as f64 / writer_seconds.max(f64::EPSILON),
    );
    println!(
        "# epochs: {} published, {} retired, {} retained, {} pinned readers",
        stats.published, stats.retired, stats.retained, stats.pinned_readers
    );
    println!(
        "# health: {} refreshes ({} full fallbacks), {} retained epochs, {} pinned readers",
        health.refreshes, health.fallback_refreshes, health.retained_epochs, health.pinned_readers
    );
    println!(
        "# metrics: in-flight scrape covered all families: {}",
        inflight_scrape_ok.load(Ordering::Relaxed)
    );
    for (index, (name, _)) in registered.iter().enumerate() {
        println!("# {name}: {} maintained rows", graph.pin().table(ids[index]).unwrap().len());
    }
    if let Some(path) = &args.dump_metrics {
        if let Err(error) = std::fs::write(path, &metrics_text) {
            eprintln!("tpath-serve: cannot write {path:?}: {error}");
            return ExitCode::FAILURE;
        }
        println!("# metrics: final scrape written to {path}");
    }

    if !agree.load(Ordering::Relaxed) {
        eprintln!("tpath-serve: FAILED — a snapshot read diverged from its epoch-pinned execute");
        return ExitCode::FAILURE;
    }
    if graph.batches_applied() != batches.len() {
        eprintln!("tpath-serve: FAILED — the writer was starved");
        return ExitCode::FAILURE;
    }
    if !inflight_scrape_ok.load(Ordering::Relaxed) {
        eprintln!("tpath-serve: FAILED — the in-flight metrics scrape missed a family");
        return ExitCode::FAILURE;
    }
    if !families_covered(&metrics_text) {
        eprintln!("tpath-serve: FAILED — the final metrics scrape missed a family");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// True if a Prometheus scrape exposes all four subsystem metric families.
fn families_covered(text: &str) -> bool {
    ["tpath_engine_", "tpath_live_", "tpath_epoch_", "tpath_serve_"]
        .iter()
        .all(|prefix| text.contains(prefix))
}
