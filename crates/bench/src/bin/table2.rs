//! Regenerates Table II: execution time and output size of Q1–Q12 on the largest
//! graph of the sweep (G10 under the configured scale divisor).
//!
//! `cargo run --release -p bench --bin table2`

use trpq::queries::QueryId;
use workload::ScaleFactor;

fn main() {
    bench::print_preamble("Table II: execution time of queries Q1-Q12 for graph G10");
    let (graph, report) = bench::build_graph(ScaleFactor::G10);
    println!(
        "# G10: {} nodes, {} edges, {} temporal nodes, {} temporal edges",
        report.nodes, report.edges, report.temporal_nodes, report.temporal_edges
    );
    println!(
        "{:<6} {:>22} {:>16} {:>14}",
        "query", "interval-based time (s)", "total time (s)", "output size"
    );
    let options = bench::execution_options();
    for id in QueryId::ALL {
        let m = bench::measure(id, &graph, &options);
        println!(
            "{:<6} {:>22.4} {:>16.4} {:>14}",
            id.name(),
            m.interval_seconds,
            m.total_seconds,
            m.output_size
        );
    }
}
