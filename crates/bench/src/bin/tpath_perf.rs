//! `tpath-perf` — the machine-readable performance harness.
//!
//! Runs a fixed matrix of workloads (scale × query × join strategy × threads) from
//! the `workload` crate with seeded RNG and writes one `BENCH_<label>.json` so every
//! run appends a point to the repository's perf trajectory.  The hash and merge join
//! strategies must produce identical output cardinalities on every workload; the
//! binary exits non-zero if they disagree, which is what the CI `perf-smoke` job
//! asserts.  Alongside the batch matrix it measures the LIVE matrix (incremental
//! refresh vs from-scratch recompute over a batch stream), the ANSWERS matrix
//! (first-page latency and peak answer memory across the three answer modes) and
//! the SERVE matrix (multi-reader throughput of the MVCC serving stack at 1/2/4
//! workers, every response verified against a full execute pinned to its epoch,
//! writer never starved).
//!
//! ```text
//! cargo run --release -p bench --bin tpath-perf -- [--smoke] [--label NAME] [--out DIR]
//! ```
//!
//! * `--smoke`   — tiny sizes (tens of persons, 24 time slots) so the whole matrix
//!   finishes well under a minute; used by CI.
//! * `--label`   — the `<label>` part of the output file name (default: `local`, or
//!   `TPATH_BENCH_LABEL`).
//! * `--out`     — directory for the JSON report (default: current directory).
//! * `--threads` — comma-separated worker counts to sweep (default: `1` plus all
//!   cores when more than one is available).
//!
//! See README.md ("Performance trajectory") for the JSON schema.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use std::time::Instant;

use bench::json::Json;
use engine::{
    analyze, compile, execute, execute_answers, AnswerMode, Binding, CompactAnswers,
    ExecutionOptions, GraphRelations, JoinStrategy, PlanSet, Query, SchemaSummary,
};
use live::serve::{Request, ServeGraph, Server};
use live::LiveGraph;
use tgraph::{Interval, Itpg, Object};
use trpq::parser::MatchClause;
use trpq::queries::QueryId;
use workload::{ContactTracingConfig, ScaleFactor};

/// The RNG seed all perf workloads are generated from, so runs are comparable
/// across machines and commits.
const PERF_SEED: u64 = 0x7e_a7_05;

struct Args {
    smoke: bool,
    label: String,
    out_dir: String,
    threads: Vec<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        label: std::env::var("TPATH_BENCH_LABEL").unwrap_or_else(|_| "local".to_owned()),
        out_dir: ".".to_owned(),
        threads: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--label" => args.label = iter.next().ok_or("--label needs a value")?,
            "--out" => args.out_dir = iter.next().ok_or("--out needs a value")?,
            "--threads" => {
                let spec = iter.next().ok_or("--threads needs a value")?;
                args.threads = spec
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => {
                println!("tpath-perf [--smoke] [--label NAME] [--out DIR] [--threads N,M,...]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.label.is_empty() || !args.label.chars().all(|c| c.is_alphanumeric() || c == '-') {
        return Err(format!(
            "label {:?} must be non-empty alphanumeric/dash (it names BENCH_<label>.json)",
            args.label
        ));
    }
    if args.threads.is_empty() {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        args.threads = if cores > 1 { vec![1, cores] } else { vec![1] };
    }
    Ok(args)
}

/// One scale point of the matrix: a name plus a fully-seeded generator config.
fn matrix_scales(smoke: bool) -> Vec<(String, ContactTracingConfig)> {
    if smoke {
        // Tiny graphs with a shortened temporal domain and a raised positivity rate
        // (so the temporal queries return rows): the point is schema and
        // hash-vs-merge agreement, not statistical stability.
        [100usize, 200]
            .into_iter()
            .map(|persons| {
                (
                    format!("S{persons}"),
                    ContactTracingConfig::with_persons(persons)
                        .with_seed(PERF_SEED)
                        .with_time_points(24)
                        .with_positivity_rate(0.1),
                )
            })
            .collect()
    } else {
        let divisor = bench::scale_divisor();
        [ScaleFactor::G1, ScaleFactor::G2, ScaleFactor::G3]
            .into_iter()
            .map(|scale| {
                (scale.name().to_owned(), scale.scaled_config(divisor).with_seed(PERF_SEED))
            })
            .collect()
    }
}

/// The queries of the matrix: the paper's Q1–Q12 (or a representative subset in
/// smoke mode) plus the REACH star-closure reachability query (the engine's
/// structural fixpoint) and the RECUR recurring-contact query (the time-aware mixed
/// fixpoint).
fn matrix_queries(smoke: bool) -> Vec<(&'static str, MatchClause)> {
    let ids = if smoke {
        // One purely structural query, one structural join, one temporal query.
        vec![QueryId::Q1, QueryId::Q5, QueryId::Q9]
    } else {
        QueryId::ALL.to_vec()
    };
    let mut queries: Vec<(&'static str, MatchClause)> =
        ids.into_iter().map(|id| (id.name(), id.clause())).collect();
    queries.push((
        bench::REACH_QUERY_NAME,
        trpq::parser::parse_match(bench::REACH_QUERY_TEXT).expect("the REACH query parses"),
    ));
    queries.push((
        bench::RECUR_QUERY_NAME,
        trpq::parser::parse_match(bench::RECUR_QUERY_TEXT).expect("the RECUR query parses"),
    ));
    queries
}

/// Rows served before the clock stops in the ANSWERS matrix — a realistic
/// "first page" of a serving endpoint.
const FIRST_PAGE: usize = 50;

/// One measured answer-mode cell of the ANSWERS matrix.
struct AnswerCell {
    mode: AnswerMode,
    first_page_rows: usize,
    first_page_seconds: f64,
    total_seconds: f64,
    output_rows: usize,
    peak_answer_bytes: usize,
    agree: bool,
}

/// Runs one closure workload through all three answer modes (threads = 1, auto
/// strategy) and measures first-page latency and peak answer memory against full
/// materialisation.  Memory is the deterministic logical footprint of the answer
/// representation — rows (or buffered rows, or interval pairs) times their size —
/// rather than process RSS, which is cumulative across the whole run.
fn run_answers_matrix(clause: &MatchClause, graph: &GraphRelations) -> Vec<AnswerCell> {
    let query = Query::from_clause(clause)
        .expect("perf workloads compile")
        .with_options(ExecutionOptions::with_threads(1));

    // Full materialisation: the first page is only servable once the whole table
    // exists, so its first-page latency is the total latency.
    let start = Instant::now();
    let table = query.run(graph).into_table().expect("the default mode materialises");
    let full_seconds = start.elapsed().as_secs_f64();
    let row_bytes =
        table.columns.len() * std::mem::size_of::<Binding>() + std::mem::size_of::<Vec<Binding>>();
    let full = AnswerCell {
        mode: AnswerMode::Materialized,
        first_page_rows: table.len().min(FIRST_PAGE),
        first_page_seconds: full_seconds,
        total_seconds: full_seconds,
        output_rows: table.len(),
        peak_answer_bytes: table.len() * row_bytes,
        agree: true,
    };

    // Enumeration: pull the first page, then drain the rest to check agreement
    // with the materialised table (row for row, in canonical order).
    let start = Instant::now();
    let mut answers = query.clone().with_mode(AnswerMode::Enumerate).run(graph);
    let cursor = answers.cursor_mut().expect("enumerate mode hands out a cursor");
    let mut streamed = cursor.page(FIRST_PAGE);
    let first_page_seconds = start.elapsed().as_secs_f64();
    let first_page_rows = streamed.len();
    streamed.extend(cursor.by_ref());
    let enum_seconds = start.elapsed().as_secs_f64();
    let lazy = AnswerCell {
        mode: AnswerMode::Enumerate,
        first_page_rows,
        first_page_seconds,
        total_seconds: enum_seconds,
        output_rows: streamed.len(),
        peak_answer_bytes: cursor.peak_buffered_rows() * row_bytes,
        agree: streamed.as_slice() == table.rows(),
    };

    // Compact: no Step-3 expansion at all; agreement is against the coalesced
    // projection of the materialised table.
    let start = Instant::now();
    let compact = query
        .clone()
        .with_mode(AnswerMode::Compact)
        .run(graph)
        .into_compact()
        .expect("compact mode hands out interval answers");
    let compact_seconds = start.elapsed().as_secs_f64();
    let compact_bytes: usize = compact
        .iter()
        .map(|(_, set)| 2 * std::mem::size_of::<Object>() + std::mem::size_of_val(set.intervals()))
        .sum();
    let pairs = AnswerCell {
        mode: AnswerMode::Compact,
        first_page_rows: compact.num_pairs().min(FIRST_PAGE),
        first_page_seconds: compact_seconds,
        total_seconds: compact_seconds,
        output_rows: compact.num_pairs(),
        peak_answer_bytes: compact_bytes,
        agree: compact == CompactAnswers::from_table(&table),
    };

    vec![full, lazy, pairs]
}

/// One telemetry-overhead cell: the same workload measured with the
/// observability layer recording (spans, counters, histograms) and with it
/// compiled to no-ops (`ExecutionOptions::telemetry = false`).
struct TelemetryCell {
    query: &'static str,
    on_seconds: f64,
    off_seconds: f64,
}

/// Measures every matrix query with telemetry on vs. off (threads = 1, auto
/// strategy) — the overhead column that keeps the registry honest about
/// "cheap enough to stay on in release builds".  Sub-millisecond queries are
/// repeated until each measured batch spans at least ~5 ms, so the reported
/// per-execution seconds (and the overhead percentage derived from them) are
/// not clock-jitter noise.
fn run_telemetry_matrix(
    queries: &[(&'static str, MatchClause)],
    graph: &GraphRelations,
) -> Vec<TelemetryCell> {
    const TARGET_BATCH_SECONDS: f64 = 0.005;
    queries
        .iter()
        .map(|(name, clause)| {
            let options = ExecutionOptions::with_threads(1);
            let probe = bench::measure_clause(clause, graph, &options).total_seconds;
            let reps = ((TARGET_BATCH_SECONDS / probe.max(1e-9)).ceil() as usize).clamp(1, 500);
            let batch = |options: &ExecutionOptions| -> f64 {
                let mut best = f64::INFINITY;
                for _ in 0..3 {
                    let total: f64 = (0..reps)
                        .map(|_| bench::measure_clause(clause, graph, options).total_seconds)
                        .sum();
                    best = best.min(total / reps as f64);
                }
                best
            };
            let on = batch(&options);
            let off = batch(&options.with_telemetry(false));
            TelemetryCell { query: name, on_seconds: on, off_seconds: off }
        })
        .collect()
}

/// Snapshots the process-wide metric registry into the report: every family
/// with its kind and per-series values (histograms as count + scaled sum; the
/// full bucket vectors stay behind `tpath-serve`'s scrape endpoint).
fn registry_snapshot_json() -> Json {
    let families = obs::global().snapshot();
    Json::Arr(
        families
            .iter()
            .map(|family| {
                let series = family
                    .series
                    .iter()
                    .map(|series| {
                        let labels = Json::Obj(
                            series
                                .labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                                .collect(),
                        );
                        let mut entry = vec![("labels".to_owned(), labels)];
                        match &series.value {
                            obs::SeriesValue::Counter(v) => {
                                entry.push(("value".to_owned(), Json::UInt(*v)));
                            }
                            obs::SeriesValue::Gauge(v) => {
                                entry.push(("value".to_owned(), Json::Int(*v)));
                            }
                            obs::SeriesValue::Histogram(h) => {
                                entry.push(("count".to_owned(), Json::UInt(h.count)));
                                entry.push((
                                    "sum".to_owned(),
                                    Json::Float(h.sum as f64 * family.scale),
                                ));
                            }
                        }
                        Json::Obj(entry)
                    })
                    .collect();
                Json::obj([
                    ("name", Json::str(family.name.clone())),
                    ("kind", Json::str(family.kind.as_str())),
                    ("series", Json::Arr(series)),
                ])
            })
            .collect(),
    )
}

/// The maintained queries of the LIVE matrix: a purely structural query, a
/// structural join, a temporal query, and the REACH closure (which exercises the
/// conservative full-recompute fallback).
fn live_queries() -> Vec<(&'static str, PlanSet)> {
    let mut queries: Vec<(&'static str, PlanSet)> = [QueryId::Q1, QueryId::Q5, QueryId::Q9]
        .into_iter()
        .map(|id| (id.name(), engine::queries::plan_for(id)))
        .collect();
    let reach = trpq::parser::parse_match(bench::REACH_QUERY_TEXT).expect("the REACH query parses");
    queries.push((
        bench::REACH_QUERY_NAME,
        engine::compile(&reach).expect("the REACH query compiles"),
    ));
    queries
}

/// Accumulated measurements of one maintained query over a whole batch stream.
struct LiveCell {
    query: &'static str,
    refresh_seconds: f64,
    full_seconds: f64,
    refreshes: usize,
    fallback_refreshes: usize,
    final_rows: usize,
    agree: bool,
}

/// Streams one scale's workload into a `LiveGraph` and measures, per batch,
/// the incremental refresh of every maintained query against the from-scratch
/// counterfactual (relation rebuild + execute, per query — a non-live system
/// serving one query pays the rebuild for it).  Returns `(ingest seconds,
/// shared rebuild seconds, batches, mutations, per-query cells)`; the rebuild
/// total is reported separately so the speedups are reproducible from the
/// report.
fn run_live_matrix(config: &ContactTracingConfig) -> (f64, f64, usize, usize, Vec<LiveCell>) {
    let batches = workload::stream_contact_batches(config);
    let mutations = workload::mutation_count(&batches);
    let options = ExecutionOptions::with_threads(1);
    let mut graph = LiveGraph::with_options(Itpg::empty(Interval::of(0, 1)), options);
    let queries = live_queries();
    let handles: Vec<_> = queries.iter().map(|(_, plan)| graph.register(plan.clone())).collect();
    let mut cells: Vec<LiveCell> = queries
        .iter()
        .map(|(name, _)| LiveCell {
            query: name,
            refresh_seconds: 0.0,
            full_seconds: 0.0,
            refreshes: 0,
            fallback_refreshes: 0,
            final_rows: 0,
            agree: true,
        })
        .collect();
    let mut ingest_seconds = 0.0f64;
    let mut rebuild_seconds_total = 0.0f64;
    for batch in &batches {
        let start = Instant::now();
        graph.apply(batch).expect("streamed batches are valid against their prefix");
        ingest_seconds += start.elapsed().as_secs_f64();
        for (cell, handle) in cells.iter_mut().zip(&handles) {
            let start = Instant::now();
            let stats = graph.refresh(*handle);
            cell.refresh_seconds += start.elapsed().as_secs_f64();
            cell.refreshes += 1;
            if stats.fallback_full {
                cell.fallback_refreshes += 1;
            }
        }
        // The from-scratch counterfactual a non-live system would pay per batch:
        // rebuild the relations and execute the query on them.
        let start = Instant::now();
        let scratch = GraphRelations::from_itpg(graph.itpg());
        let rebuild_seconds = start.elapsed().as_secs_f64();
        rebuild_seconds_total += rebuild_seconds;
        for ((cell, handle), (_, plan_set)) in cells.iter_mut().zip(&handles).zip(&queries) {
            let start = Instant::now();
            let expected = engine::execute(plan_set, &scratch, &options);
            cell.full_seconds += rebuild_seconds + start.elapsed().as_secs_f64();
            if graph.table(*handle) != &expected.table {
                cell.agree = false;
            }
        }
    }
    for (cell, handle) in cells.iter_mut().zip(&handles) {
        cell.final_rows = graph.table(*handle).len();
    }
    (ingest_seconds, rebuild_seconds_total, batches.len(), mutations, cells)
}

/// One measured cell of the SERVE matrix: the full batch stream ingested by a
/// single writer while `readers` worker threads (fed by as many client
/// threads) serve registered reads and ad-hoc executions in all three answer
/// modes against pinned MVCC snapshots.
struct ServeCell {
    readers: usize,
    requests: usize,
    serve_seconds: f64,
    writer_seconds: f64,
    writer_batches: usize,
    writer_batches_expected: usize,
    mutations: usize,
    epochs_published: u64,
    epochs_retired: u64,
    /// Every response's snapshot read equalled a full execute pinned to the
    /// response's own epoch.
    agree: bool,
}

/// Runs one scale's stream through the MVCC serving stack at each reader
/// count.  Clients keep submitting until the writer has ingested the whole
/// stream, and every response is verified against a from-scratch `execute` on
/// the relations of the epoch that response pinned — the "snapshot read ≡
/// epoch-pinned full execute" invariant the perf-smoke validator asserts.
fn run_serve_matrix(
    config: &ContactTracingConfig,
    strategy: JoinStrategy,
    reader_counts: &[usize],
) -> Vec<ServeCell> {
    let batches = workload::stream_contact_batches(config);
    let mutations = workload::mutation_count(&batches);
    let options = ExecutionOptions::with_threads(1).with_strategy(strategy);
    let queries = live_queries();
    let mut cells = Vec::new();
    for &readers in reader_counts {
        let graph = Arc::new(ServeGraph::with_options(Itpg::empty(Interval::of(0, 1)), options));
        let ids: Vec<_> = queries.iter().map(|(_, plan)| graph.register(plan.clone())).collect();
        let plans: Vec<Arc<PlanSet>> =
            queries.iter().map(|(_, plan)| Arc::new(plan.clone())).collect();
        let server = Server::start(Arc::clone(&graph), readers);
        let done = AtomicBool::new(false);
        let agree = AtomicBool::new(true);
        let requests = AtomicUsize::new(0);
        let mut writer_seconds = 0.0f64;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for reader in 0..readers {
                let (server, done, agree, requests) = (&server, &done, &agree, &requests);
                let (plans, ids) = (&plans, &ids);
                scope.spawn(move || {
                    let modes =
                        [AnswerMode::Materialized, AnswerMode::Compact, AnswerMode::Enumerate];
                    let mut round = 0usize;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let index = (reader + round) % plans.len();
                        let mode = modes[round % modes.len()];
                        let maintained =
                            server.submit(Request::Registered(ids[index])).wait().unwrap();
                        let expected =
                            execute(&plans[index], maintained.epoch.relations(), &options);
                        if maintained.answer.rows().unwrap() != &expected.table {
                            agree.store(false, Ordering::Relaxed);
                        }
                        let adhoc = server
                            .submit(Request::Compiled { plan: Arc::clone(&plans[index]), mode })
                            .wait()
                            .unwrap();
                        let ok = match mode {
                            AnswerMode::Materialized | AnswerMode::Enumerate => {
                                let expected =
                                    execute(&plans[index], adhoc.epoch.relations(), &options);
                                adhoc.answer.rows().unwrap() == &expected.table
                            }
                            AnswerMode::Compact => {
                                let expected = execute_answers(
                                    &plans[index],
                                    adhoc.epoch.relations(),
                                    &options.with_mode(mode),
                                )
                                .into_compact()
                                .expect("compact answers");
                                adhoc.answer.compact().unwrap() == &expected
                            }
                        };
                        if !ok {
                            agree.store(false, Ordering::Relaxed);
                        }
                        requests.fetch_add(2, Ordering::Relaxed);
                        round += 1;
                        if finished {
                            break;
                        }
                    }
                });
            }
            // The single writer: ingest the whole stream while the clients
            // hammer the pool.  The never-starved invariant is that every
            // batch lands regardless of reader pressure.
            for batch in &batches {
                let ingest_start = Instant::now();
                graph.ingest(batch).expect("streamed batches are valid against their prefix");
                writer_seconds += ingest_start.elapsed().as_secs_f64();
            }
            done.store(true, Ordering::Release);
        });
        let serve_seconds = start.elapsed().as_secs_f64();
        let stats = graph.stats();
        server.shutdown();
        cells.push(ServeCell {
            readers,
            requests: requests.load(Ordering::Relaxed),
            serve_seconds,
            writer_seconds,
            writer_batches: graph.batches_applied(),
            writer_batches_expected: batches.len(),
            mutations,
            epochs_published: stats.published,
            epochs_retired: stats.retired,
            agree: agree.load(Ordering::Relaxed),
        });
    }
    cells
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("tpath-perf: {message}");
            return ExitCode::FAILURE;
        }
    };
    let scales = matrix_scales(args.smoke);
    let queries = matrix_queries(args.smoke);

    println!(
        "# tpath-perf label={} smoke={} threads={:?} ({} workloads)",
        args.label,
        args.smoke,
        args.threads,
        scales.len() * queries.len() * JoinStrategy::ALL.len() * args.threads.len(),
    );

    // output_rows per (scale, query, threads) cell, used to assert strategy
    // agreement.
    type Cell = (String, &'static str, usize);
    let mut workloads: Vec<Json> = Vec::new();
    let mut row_counts: BTreeMap<Cell, Vec<(JoinStrategy, usize)>> = BTreeMap::new();
    let mut answers_entries: Vec<Json> = Vec::new();
    let mut telemetry_entries: Vec<Json> = Vec::new();
    let mut answer_disagreements = 0usize;
    for (scale_name, config) in &scales {
        let (graph, report) = bench::build_graph_with(config.clone());
        println!(
            "# {scale_name}: {} persons, {} temporal nodes, {} temporal edges \
             (generate {:.2}s, load {:.2}s)",
            report.persons,
            report.temporal_nodes,
            report.temporal_edges,
            report.generate_seconds,
            report.load_seconds
        );
        // The semantic analyzer/optimizer pass, measured once per query and
        // scale: schema summarisation is shared, the per-plan abstract
        // interpretation is per query.  The same pass runs inside every
        // execution below (options.optimize defaults to true), so this is the
        // per-query planning overhead the optimizer adds.
        let schema_start = Instant::now();
        let schema = SchemaSummary::of(&graph);
        let schema_seconds = schema_start.elapsed().as_secs_f64();
        println!("# {scale_name}: schema summary {schema_seconds:.4}s");
        let mut analyses: BTreeMap<&'static str, (f64, u64, u64, u64)> = BTreeMap::new();
        for (query_name, clause) in &queries {
            let plan_set = compile(clause).expect("harness queries compile");
            let analyze_start = Instant::now();
            let analysis = analyze(&plan_set, &schema);
            let analyze_seconds = analyze_start.elapsed().as_secs_f64();
            println!(
                "ANALYZE {scale_name} {query_name}: {analyze_seconds:.6}s, \
                 {} plan(s) pruned, {} alternative(s) pruned, {} closure window(s) tightened",
                analysis.pruned_plans, analysis.pruned_alternatives, analysis.tightened_closures,
            );
            analyses.insert(
                *query_name,
                (
                    analyze_seconds,
                    analysis.pruned_plans as u64,
                    analysis.pruned_alternatives as u64,
                    analysis.tightened_closures as u64,
                ),
            );
        }
        for &threads in &args.threads {
            for (query_name, clause) in &queries {
                for strategy in JoinStrategy::ALL {
                    let options = ExecutionOptions::with_threads(threads).with_strategy(strategy);
                    let m = bench::measure_clause(clause, &graph, &options);
                    println!(
                        "{scale_name} {query_name} {} t={threads}: total {:.4}s, \
                         interval {:.4}s, {} interval rows, {} output rows",
                        strategy,
                        m.total_seconds,
                        m.interval_seconds,
                        m.interval_rows,
                        m.output_size
                    );
                    row_counts
                        .entry((scale_name.clone(), query_name, threads))
                        .or_default()
                        .push((strategy, m.output_size));
                    workloads.push(Json::obj([
                        ("scale", Json::str(scale_name.clone())),
                        ("persons", Json::UInt(report.persons as u64)),
                        ("temporal_nodes", Json::UInt(report.temporal_nodes as u64)),
                        ("temporal_edges", Json::UInt(report.temporal_edges as u64)),
                        ("query", Json::str(*query_name)),
                        ("strategy", Json::str(strategy.name())),
                        ("threads", Json::UInt(threads as u64)),
                        ("interval_seconds", Json::Float(m.interval_seconds)),
                        ("total_seconds", Json::Float(m.total_seconds)),
                        ("interval_rows", Json::UInt(m.interval_rows as u64)),
                        ("output_rows", Json::UInt(m.output_size as u64)),
                        ("analyze_seconds", Json::Float(analyses[query_name].0)),
                        ("pruned_plans", Json::UInt(analyses[query_name].1)),
                        ("pruned_alternatives", Json::UInt(analyses[query_name].2)),
                        ("tightened_closures", Json::UInt(analyses[query_name].3)),
                    ]));
                }
            }
        }

        // The ANSWERS matrix: the closure workloads (the output-heavy queries)
        // through all three answer modes, first-page latency and peak answer
        // memory vs. full materialisation.
        for (query_name, clause) in &queries {
            if *query_name != bench::REACH_QUERY_NAME && *query_name != bench::RECUR_QUERY_NAME {
                continue;
            }
            for cell in run_answers_matrix(clause, &graph) {
                println!(
                    "ANSWERS {scale_name} {query_name} {}: first-page {:.4}s ({} rows), \
                     total {:.4}s, {} output rows, {} peak answer bytes, agree={}",
                    cell.mode.name(),
                    cell.first_page_seconds,
                    cell.first_page_rows,
                    cell.total_seconds,
                    cell.output_rows,
                    cell.peak_answer_bytes,
                    cell.agree
                );
                if !cell.agree {
                    eprintln!(
                        "tpath-perf: ANSWERS {scale_name}/{query_name}/{}: answers diverged \
                         from the materialised table",
                        cell.mode.name()
                    );
                    answer_disagreements += 1;
                }
                answers_entries.push(Json::obj([
                    ("scale", Json::str(scale_name.clone())),
                    ("query", Json::str(*query_name)),
                    ("mode", Json::str(cell.mode.name())),
                    ("threads", Json::UInt(1)),
                    ("first_page_rows", Json::UInt(cell.first_page_rows as u64)),
                    ("first_page_seconds", Json::Float(cell.first_page_seconds)),
                    ("total_seconds", Json::Float(cell.total_seconds)),
                    ("output_rows", Json::UInt(cell.output_rows as u64)),
                    ("peak_answer_bytes", Json::UInt(cell.peak_answer_bytes as u64)),
                    ("agree", Json::Bool(cell.agree)),
                ]));
            }
        }

        // The TELEMETRY column: every matrix query with the observability
        // layer recording vs. compiled to no-ops.
        for cell in run_telemetry_matrix(&queries, &graph) {
            let overhead_pct =
                (cell.on_seconds - cell.off_seconds) / cell.off_seconds.max(f64::EPSILON) * 100.0;
            println!(
                "TELEMETRY {scale_name} {}: on {:.4}s, off {:.4}s ({overhead_pct:+.1}%)",
                cell.query, cell.on_seconds, cell.off_seconds
            );
            telemetry_entries.push(Json::obj([
                ("scale", Json::str(scale_name.clone())),
                ("query", Json::str(cell.query)),
                ("threads", Json::UInt(1)),
                ("telemetry_on_seconds", Json::Float(cell.on_seconds)),
                ("telemetry_off_seconds", Json::Float(cell.off_seconds)),
                ("overhead_pct", Json::Float(overhead_pct)),
            ]));
        }
    }

    // The LIVE matrix: stream every scale batch by batch, maintain a query set,
    // and compare incremental refresh latency against full recompute per batch.
    let mut live_entries: Vec<Json> = Vec::new();
    let mut live_disagreements = 0usize;
    for (scale_name, config) in &scales {
        let (ingest_seconds, rebuild_seconds, batches, mutations, cells) = run_live_matrix(config);
        println!(
            "# LIVE {scale_name}: {batches} batches, {mutations} mutations, \
             ingest {ingest_seconds:.4}s ({:.0} mutations/s)",
            mutations as f64 / ingest_seconds.max(f64::EPSILON)
        );
        for cell in cells {
            println!(
                "LIVE {scale_name} {} auto: refresh {:.4}s vs full {:.4}s ({:.1}x), \
                 {} rows, {}/{} fallback refreshes, agree={}",
                cell.query,
                cell.refresh_seconds,
                cell.full_seconds,
                cell.full_seconds / cell.refresh_seconds.max(f64::EPSILON),
                cell.final_rows,
                cell.fallback_refreshes,
                cell.refreshes,
                cell.agree
            );
            if !cell.agree {
                eprintln!(
                    "tpath-perf: LIVE {scale_name}/{}: maintained answer diverged from \
                     the from-scratch execution",
                    cell.query
                );
                live_disagreements += 1;
            }
            live_entries.push(Json::obj([
                ("scale", Json::str(scale_name.clone())),
                ("query", Json::str(cell.query)),
                ("strategy", Json::str("auto")),
                ("batches", Json::UInt(batches as u64)),
                ("mutations", Json::UInt(mutations as u64)),
                ("refreshes", Json::UInt(cell.refreshes as u64)),
                ("fallback_refreshes", Json::UInt(cell.fallback_refreshes as u64)),
                ("ingest_seconds", Json::Float(ingest_seconds)),
                ("rebuild_seconds", Json::Float(rebuild_seconds)),
                ("refresh_seconds", Json::Float(cell.refresh_seconds)),
                ("full_seconds", Json::Float(cell.full_seconds)),
                ("final_rows", Json::UInt(cell.final_rows as u64)),
                ("agree", Json::Bool(cell.agree)),
            ]));
        }
    }

    // The SERVE matrix: the MVCC serving stack under concurrent load — one
    // writer streaming the scale's batches while 1/2/4 worker threads serve
    // registered and ad-hoc reads (all answer modes) from pinned snapshots.
    let serve_strategy = bench::join_strategy();
    let reader_counts = [1usize, 2, 4];
    let mut serve_entries: Vec<Json> = Vec::new();
    let mut serve_disagreements = 0usize;
    let mut writer_starvations = 0usize;
    for (scale_name, config) in &scales {
        for cell in run_serve_matrix(config, serve_strategy, &reader_counts) {
            let throughput = cell.requests as f64 / cell.serve_seconds.max(f64::EPSILON);
            println!(
                "SERVE {scale_name} {} readers={}: {} requests in {:.4}s ({:.0} q/s), \
                 writer {}/{} batches in {:.4}s, {} epochs published / {} retired, agree={}",
                serve_strategy,
                cell.readers,
                cell.requests,
                cell.serve_seconds,
                throughput,
                cell.writer_batches,
                cell.writer_batches_expected,
                cell.writer_seconds,
                cell.epochs_published,
                cell.epochs_retired,
                cell.agree
            );
            if !cell.agree {
                eprintln!(
                    "tpath-perf: SERVE {scale_name}/readers={}: a snapshot read diverged \
                     from the epoch-pinned full execute",
                    cell.readers
                );
                serve_disagreements += 1;
            }
            if cell.writer_batches != cell.writer_batches_expected {
                eprintln!(
                    "tpath-perf: SERVE {scale_name}/readers={}: the writer applied {}/{} \
                     batches — starved by readers",
                    cell.readers, cell.writer_batches, cell.writer_batches_expected
                );
                writer_starvations += 1;
            }
            serve_entries.push(Json::obj([
                ("scale", Json::str(scale_name.clone())),
                ("strategy", Json::str(serve_strategy.name())),
                ("readers", Json::UInt(cell.readers as u64)),
                ("requests", Json::UInt(cell.requests as u64)),
                ("serve_seconds", Json::Float(cell.serve_seconds)),
                ("throughput_qps", Json::Float(throughput)),
                ("writer_seconds", Json::Float(cell.writer_seconds)),
                ("writer_batches", Json::UInt(cell.writer_batches as u64)),
                ("writer_batches_expected", Json::UInt(cell.writer_batches_expected as u64)),
                ("mutations", Json::UInt(cell.mutations as u64)),
                ("epochs_published", Json::UInt(cell.epochs_published)),
                ("epochs_retired", Json::UInt(cell.epochs_retired)),
                ("agree", Json::Bool(cell.agree)),
            ]));
        }
    }

    let mut disagreements = 0usize;
    for ((scale, query, threads), counts) in &row_counts {
        let reference = counts[0].1;
        for (strategy, rows) in counts {
            if *rows != reference {
                eprintln!(
                    "tpath-perf: {scale}/{query}/t={threads}: {strategy} produced {rows} \
                     output rows but {} produced {reference}",
                    counts[0].0
                );
                disagreements += 1;
            }
        }
    }

    let created_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| Json::UInt(d.as_secs()))
        .unwrap_or(Json::Null);
    let report = Json::obj([
        ("schema_version", Json::UInt(6)),
        ("label", Json::str(args.label.clone())),
        ("created_unix", created_unix),
        ("smoke", Json::Bool(args.smoke)),
        ("seed", Json::UInt(PERF_SEED)),
        (
            "scale_divisor",
            if args.smoke { Json::Null } else { Json::UInt(bench::scale_divisor() as u64) },
        ),
        (
            "host",
            Json::obj([(
                "available_threads",
                Json::UInt(
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as u64
                ),
            )]),
        ),
        ("strategies_agree", Json::Bool(disagreements == 0)),
        ("live_agrees", Json::Bool(live_disagreements == 0)),
        ("answer_modes_agree", Json::Bool(answer_disagreements == 0)),
        ("serve_agrees", Json::Bool(serve_disagreements == 0)),
        ("writer_never_starved", Json::Bool(writer_starvations == 0)),
        ("peak_rss_bytes", bench::peak_rss_bytes().map(Json::UInt).unwrap_or(Json::Null)),
        ("workloads", Json::Arr(workloads)),
        ("live", Json::Arr(live_entries)),
        ("answers", Json::Arr(answers_entries)),
        ("serve", Json::Arr(serve_entries)),
        ("telemetry", Json::Arr(telemetry_entries)),
        // A snapshot of the process-wide metric registry after the whole run —
        // the same counters `tpath-serve` exposes through `Request::Metrics`.
        ("metrics", registry_snapshot_json()),
    ]);

    let path = format!("{}/BENCH_{}.json", args.out_dir.trim_end_matches('/'), args.label);
    if let Err(error) = std::fs::write(&path, report.render()) {
        eprintln!("tpath-perf: cannot write {path}: {error}");
        return ExitCode::FAILURE;
    }
    println!("# wrote {path}");

    if disagreements > 0 {
        eprintln!("tpath-perf: FAILED — {disagreements} strategy disagreement(s)");
        return ExitCode::FAILURE;
    }
    if live_disagreements > 0 {
        eprintln!("tpath-perf: FAILED — {live_disagreements} incremental-vs-full disagreement(s)");
        return ExitCode::FAILURE;
    }
    if answer_disagreements > 0 {
        eprintln!("tpath-perf: FAILED — {answer_disagreements} answer-mode disagreement(s)");
        return ExitCode::FAILURE;
    }
    if serve_disagreements > 0 {
        eprintln!("tpath-perf: FAILED — {serve_disagreements} snapshot-vs-execute disagreement(s)");
        return ExitCode::FAILURE;
    }
    if writer_starvations > 0 {
        eprintln!("tpath-perf: FAILED — the writer was starved in {writer_starvations} cell(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
