//! `tpath-perf` — the machine-readable performance harness.
//!
//! Runs a fixed matrix of workloads (scale × query × join strategy × threads) from
//! the `workload` crate with seeded RNG and writes one `BENCH_<label>.json` so every
//! run appends a point to the repository's perf trajectory.  The hash and merge join
//! strategies must produce identical output cardinalities on every workload; the
//! binary exits non-zero if they disagree, which is what the CI `perf-smoke` job
//! asserts.
//!
//! ```text
//! cargo run --release -p bench --bin tpath-perf -- [--smoke] [--label NAME] [--out DIR]
//! ```
//!
//! * `--smoke`   — tiny sizes (tens of persons, 24 time slots) so the whole matrix
//!   finishes well under a minute; used by CI.
//! * `--label`   — the `<label>` part of the output file name (default: `local`, or
//!   `TPATH_BENCH_LABEL`).
//! * `--out`     — directory for the JSON report (default: current directory).
//! * `--threads` — comma-separated worker counts to sweep (default: `1` plus all
//!   cores when more than one is available).
//!
//! See README.md ("Performance trajectory") for the JSON schema.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use bench::json::Json;
use engine::{ExecutionOptions, JoinStrategy};
use trpq::parser::MatchClause;
use trpq::queries::QueryId;
use workload::{ContactTracingConfig, ScaleFactor};

/// The RNG seed all perf workloads are generated from, so runs are comparable
/// across machines and commits.
const PERF_SEED: u64 = 0x7e_a7_05;

struct Args {
    smoke: bool,
    label: String,
    out_dir: String,
    threads: Vec<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        label: std::env::var("TPATH_BENCH_LABEL").unwrap_or_else(|_| "local".to_owned()),
        out_dir: ".".to_owned(),
        threads: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--label" => args.label = iter.next().ok_or("--label needs a value")?,
            "--out" => args.out_dir = iter.next().ok_or("--out needs a value")?,
            "--threads" => {
                let spec = iter.next().ok_or("--threads needs a value")?;
                args.threads = spec
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => {
                println!("tpath-perf [--smoke] [--label NAME] [--out DIR] [--threads N,M,...]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.label.is_empty() || !args.label.chars().all(|c| c.is_alphanumeric() || c == '-') {
        return Err(format!(
            "label {:?} must be non-empty alphanumeric/dash (it names BENCH_<label>.json)",
            args.label
        ));
    }
    if args.threads.is_empty() {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        args.threads = if cores > 1 { vec![1, cores] } else { vec![1] };
    }
    Ok(args)
}

/// One scale point of the matrix: a name plus a fully-seeded generator config.
fn matrix_scales(smoke: bool) -> Vec<(String, ContactTracingConfig)> {
    if smoke {
        // Tiny graphs with a shortened temporal domain and a raised positivity rate
        // (so the temporal queries return rows): the point is schema and
        // hash-vs-merge agreement, not statistical stability.
        [100usize, 200]
            .into_iter()
            .map(|persons| {
                (
                    format!("S{persons}"),
                    ContactTracingConfig::with_persons(persons)
                        .with_seed(PERF_SEED)
                        .with_time_points(24)
                        .with_positivity_rate(0.1),
                )
            })
            .collect()
    } else {
        let divisor = bench::scale_divisor();
        [ScaleFactor::G1, ScaleFactor::G2, ScaleFactor::G3]
            .into_iter()
            .map(|scale| {
                (scale.name().to_owned(), scale.scaled_config(divisor).with_seed(PERF_SEED))
            })
            .collect()
    }
}

/// The queries of the matrix: the paper's Q1–Q12 (or a representative subset in
/// smoke mode) plus the REACH star-closure reachability query (the engine's
/// structural fixpoint) and the RECUR recurring-contact query (the time-aware mixed
/// fixpoint).
fn matrix_queries(smoke: bool) -> Vec<(&'static str, MatchClause)> {
    let ids = if smoke {
        // One purely structural query, one structural join, one temporal query.
        vec![QueryId::Q1, QueryId::Q5, QueryId::Q9]
    } else {
        QueryId::ALL.to_vec()
    };
    let mut queries: Vec<(&'static str, MatchClause)> =
        ids.into_iter().map(|id| (id.name(), id.clause())).collect();
    queries.push((
        bench::REACH_QUERY_NAME,
        trpq::parser::parse_match(bench::REACH_QUERY_TEXT).expect("the REACH query parses"),
    ));
    queries.push((
        bench::RECUR_QUERY_NAME,
        trpq::parser::parse_match(bench::RECUR_QUERY_TEXT).expect("the RECUR query parses"),
    ));
    queries
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("tpath-perf: {message}");
            return ExitCode::FAILURE;
        }
    };
    let scales = matrix_scales(args.smoke);
    let queries = matrix_queries(args.smoke);

    println!(
        "# tpath-perf label={} smoke={} threads={:?} ({} workloads)",
        args.label,
        args.smoke,
        args.threads,
        scales.len() * queries.len() * JoinStrategy::ALL.len() * args.threads.len(),
    );

    // output_rows per (scale, query, threads) cell, used to assert strategy
    // agreement.
    type Cell = (String, &'static str, usize);
    let mut workloads: Vec<Json> = Vec::new();
    let mut row_counts: BTreeMap<Cell, Vec<(JoinStrategy, usize)>> = BTreeMap::new();
    for (scale_name, config) in &scales {
        let (graph, report) = bench::build_graph_with(config.clone());
        println!(
            "# {scale_name}: {} persons, {} temporal nodes, {} temporal edges \
             (generate {:.2}s, load {:.2}s)",
            report.persons,
            report.temporal_nodes,
            report.temporal_edges,
            report.generate_seconds,
            report.load_seconds
        );
        for &threads in &args.threads {
            for (query_name, clause) in &queries {
                for strategy in JoinStrategy::ALL {
                    let options = ExecutionOptions::with_threads(threads).with_strategy(strategy);
                    let m = bench::measure_clause(clause, &graph, &options);
                    println!(
                        "{scale_name} {query_name} {} t={threads}: total {:.4}s, \
                         interval {:.4}s, {} interval rows, {} output rows",
                        strategy,
                        m.total_seconds,
                        m.interval_seconds,
                        m.interval_rows,
                        m.output_size
                    );
                    row_counts
                        .entry((scale_name.clone(), query_name, threads))
                        .or_default()
                        .push((strategy, m.output_size));
                    workloads.push(Json::obj([
                        ("scale", Json::str(scale_name.clone())),
                        ("persons", Json::UInt(report.persons as u64)),
                        ("temporal_nodes", Json::UInt(report.temporal_nodes as u64)),
                        ("temporal_edges", Json::UInt(report.temporal_edges as u64)),
                        ("query", Json::str(*query_name)),
                        ("strategy", Json::str(strategy.name())),
                        ("threads", Json::UInt(threads as u64)),
                        ("interval_seconds", Json::Float(m.interval_seconds)),
                        ("total_seconds", Json::Float(m.total_seconds)),
                        ("interval_rows", Json::UInt(m.interval_rows as u64)),
                        ("output_rows", Json::UInt(m.output_size as u64)),
                    ]));
                }
            }
        }
    }

    let mut disagreements = 0usize;
    for ((scale, query, threads), counts) in &row_counts {
        let reference = counts[0].1;
        for (strategy, rows) in counts {
            if *rows != reference {
                eprintln!(
                    "tpath-perf: {scale}/{query}/t={threads}: {strategy} produced {rows} \
                     output rows but {} produced {reference}",
                    counts[0].0
                );
                disagreements += 1;
            }
        }
    }

    let created_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| Json::UInt(d.as_secs()))
        .unwrap_or(Json::Null);
    let report = Json::obj([
        ("schema_version", Json::UInt(1)),
        ("label", Json::str(args.label.clone())),
        ("created_unix", created_unix),
        ("smoke", Json::Bool(args.smoke)),
        ("seed", Json::UInt(PERF_SEED)),
        (
            "scale_divisor",
            if args.smoke { Json::Null } else { Json::UInt(bench::scale_divisor() as u64) },
        ),
        (
            "host",
            Json::obj([(
                "available_threads",
                Json::UInt(
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as u64
                ),
            )]),
        ),
        ("strategies_agree", Json::Bool(disagreements == 0)),
        ("peak_rss_bytes", bench::peak_rss_bytes().map(Json::UInt).unwrap_or(Json::Null)),
        ("workloads", Json::Arr(workloads)),
    ]);

    let path = format!("{}/BENCH_{}.json", args.out_dir.trim_end_matches('/'), args.label);
    if let Err(error) = std::fs::write(&path, report.render()) {
        eprintln!("tpath-perf: cannot write {path}: {error}");
        return ExitCode::FAILURE;
    }
    println!("# wrote {path}");

    if disagreements > 0 {
        eprintln!("tpath-perf: FAILED — {disagreements} strategy disagreement(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
