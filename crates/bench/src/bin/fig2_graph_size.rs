//! Regenerates Figure 2: query execution time as a function of graph size (G1–G10).
//!
//! `cargo run --release -p bench --bin fig2_graph_size`

use trpq::queries::QueryId;
use workload::ScaleFactor;

fn main() {
    bench::print_preamble("Figure 2: effect of graph size on query execution time");
    let options = bench::execution_options();
    print!("{:<6} {:>10}", "graph", "# nodes");
    for id in QueryId::ALL {
        print!(" {:>9}", id.name());
    }
    println!();
    for scale in ScaleFactor::ALL {
        let (graph, report) = bench::build_graph(scale);
        print!("{:<6} {:>10}", scale.name(), report.nodes);
        for id in QueryId::ALL {
            let m = bench::measure(id, &graph, &options);
            print!(" {:>9.4}", m.total_seconds);
        }
        println!();
    }
}
