//! Regenerates Figure 7 (appendix): output size and execution time of every query on
//! G2–G6, relative to G1, showing that runtime growth tracks output growth.
//!
//! `cargo run --release -p bench --bin fig7_output_size`

use trpq::queries::QueryId;
use workload::ScaleFactor;

fn main() {
    bench::print_preamble("Figure 7: relative output size and execution time vs G1");
    let options = bench::execution_options();
    let scales = [
        ScaleFactor::G1,
        ScaleFactor::G2,
        ScaleFactor::G3,
        ScaleFactor::G4,
        ScaleFactor::G5,
        ScaleFactor::G6,
    ];
    let mut baseline: Vec<(f64, f64)> = Vec::new();
    println!(
        "{:<6} {:<6} {:>14} {:>14} {:>12} {:>12}",
        "graph", "query", "output", "output xG1", "time (s)", "time xG1"
    );
    for (i, scale) in scales.iter().enumerate() {
        let (graph, _) = bench::build_graph(*scale);
        for (q, id) in QueryId::ALL.iter().enumerate() {
            let m = bench::measure(*id, &graph, &options);
            if i == 0 {
                baseline.push((m.output_size.max(1) as f64, m.total_seconds.max(1e-9)));
            }
            let (base_out, base_time) = baseline[q];
            println!(
                "{:<6} {:<6} {:>14} {:>14.2} {:>12.4} {:>12.2}",
                scale.name(),
                id.name(),
                m.output_size,
                m.output_size as f64 / base_out,
                m.total_seconds,
                m.total_seconds / base_time
            );
        }
    }
}
