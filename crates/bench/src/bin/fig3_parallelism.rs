//! Regenerates Figure 3: query execution time on the largest graph as a function of
//! the number of worker threads.
//!
//! `cargo run --release -p bench --bin fig3_parallelism`

use engine::ExecutionOptions;
use trpq::queries::QueryId;
use workload::ScaleFactor;

fn main() {
    bench::print_preamble("Figure 3: effect of parallelism on G10");
    let (graph, report) = bench::build_graph(ScaleFactor::G10);
    println!("# G10: {} nodes, {} edges", report.nodes, report.edges);
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("# {available} hardware threads available");
    // Sweep the same ladder as the paper up to 4x the available hardware threads so
    // the oversubscription regime is visible even on small machines.
    let mut cores: Vec<usize> = vec![1, 2, 4, 8, 16, 24, 32, 40, 48];
    cores.retain(|&c| c <= (available * 4).max(8));
    print!("{:<6}", "query");
    for c in &cores {
        print!(" {:>9}", format!("{c} cores"));
    }
    println!();
    for id in QueryId::ALL {
        print!("{:<6}", id.name());
        for &c in &cores {
            let options = ExecutionOptions::with_threads(c).with_strategy(bench::join_strategy());
            let m = bench::measure(id, &graph, &options);
            print!(" {:>9.4}", m.total_seconds);
        }
        println!();
    }
}
