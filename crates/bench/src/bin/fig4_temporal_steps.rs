//! Regenerates Figure 4: execution time of Q10–Q12 as the maximum number of temporal
//! navigation steps m grows from 4 to 48.
//!
//! `cargo run --release -p bench --bin fig4_temporal_steps`

use trpq::queries::QueryId;
use workload::ScaleFactor;

fn main() {
    bench::print_preamble("Figure 4: effect of temporal navigation steps on G10");
    let (graph, _) = bench::build_graph(ScaleFactor::G10);
    let options = bench::execution_options();
    print!("{:<6}", "m");
    for id in [QueryId::Q10, QueryId::Q11, QueryId::Q12] {
        print!(" {:>10}", id.name());
    }
    println!();
    for m in (4..=48).step_by(4) {
        print!("{:<6}", m);
        for id in [QueryId::Q10, QueryId::Q11, QueryId::Q12] {
            let plan = engine::queries::plan_with_temporal_bound(id, m);
            let out = engine::execute(&plan, &graph, &options);
            print!(" {:>10.4}", out.stats.total_time.as_secs_f64());
        }
        println!();
    }
}
