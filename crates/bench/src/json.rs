//! A minimal JSON value type and serialiser for the machine-readable benchmark
//! output (`BENCH_<label>.json`).
//!
//! The workspace's `serde` dependency is an offline shim without `serde_json` (see
//! `vendor/README.md`), so the perf harness renders its report with this ~hundred-line
//! writer instead.  Only what the report needs is supported: objects with ordered
//! keys, arrays, strings, integers, finite floats, booleans and null.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialised without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite float, serialised with six significant decimals.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep their insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialises the value as pretty-printed JSON (two-space indentation).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f:.6}");
                } else {
                    // JSON has no NaN/Infinity; degrade to null rather than emit
                    // an unparsable token.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let value = Json::obj([
            ("label", Json::str("ci")),
            ("count", Json::UInt(3)),
            ("delta", Json::Int(-1)),
            ("seconds", Json::Float(0.25)),
            ("ok", Json::Bool(true)),
            ("rss", Json::Null),
            ("runs", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty_list", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = value.render();
        assert!(text.contains("\"label\": \"ci\""));
        assert!(text.contains("\"seconds\": 0.250000"));
        assert!(text.contains("\"rss\": null"));
        assert!(text.contains("\"empty_list\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_rejects_non_finite_floats() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"\n");
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
    }
}
