//! Span timers and the sanctioned stopwatch.
//!
//! A [`Span`] is an RAII guard: [`Span::enter`] reads the clock, dropping the
//! guard records the elapsed nanoseconds into a latency histogram.  Span
//! histograms are labelled with slash-separated tree paths
//! (`query/step12`, `query/step3`), so the per-query span tree aggregates
//! into one histogram per node — cheap enough to stay on in release builds.
//! When telemetry is disabled the caller passes `None` and the guard is a
//! no-op: no clock read, no atomics, nothing recorded.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metric::Histogram;

/// A started wall-clock timer.  The only sanctioned `Instant::now()` outside
/// this crate's span machinery: engine and live code that needs a raw
/// duration (for stats structs) starts a `Stopwatch` instead of touching
/// `Instant` directly, which keeps the `raw-timing-outside-obs` lint's
/// guarantee that all timing flows through one place.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Reads the clock and starts timing.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed nanoseconds, saturated to `u64` (584 years).
    pub fn elapsed_nanos(&self) -> u64 {
        duration_nanos(self.elapsed())
    }
}

/// A `Duration` as nanoseconds, saturated to `u64` — the conversion every
/// latency histogram records in.
pub fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// An RAII timer guard recording into a latency histogram on drop.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    target: Option<(Arc<Histogram>, Stopwatch)>,
}

impl Span {
    /// Starts a span against `target`.  With `None` the span is a no-op that
    /// never reads the clock — this is what an `ExecutionOptions::telemetry
    /// = false` run produces.
    pub fn enter(target: Option<&Arc<Histogram>>) -> Span {
        Span { target: target.map(|hist| (Arc::clone(hist), Stopwatch::start())) }
    }

    /// A span that records nothing.
    pub fn noop() -> Span {
        Span { target: None }
    }

    /// Whether dropping this span will record.
    pub fn is_recording(&self) -> bool {
        self.target.is_some()
    }

    /// Ends the span now, recording its elapsed time (sugar for `drop`).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, watch)) = self.target.take() {
            hist.record(watch.elapsed_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn span_records_on_drop() {
        let reg = Registry::new();
        let hist = reg.latency_histogram("span_seconds", "spans", &[("span", "query")]);
        {
            let span = Span::enter(Some(&hist));
            assert!(span.is_recording());
        }
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn finish_records_once() {
        let reg = Registry::new();
        let hist = reg.latency_histogram("span_seconds", "spans", &[("span", "step12")]);
        Span::enter(Some(&hist)).finish();
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn disabled_span_is_a_noop() {
        // The telemetry-off pin: a disabled span records nothing and carries
        // no clock state at all.
        let noop = Span::noop();
        assert!(!noop.is_recording());
        drop(noop);
        let entered = Span::enter(None);
        assert!(!entered.is_recording());
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let watch = Stopwatch::start();
        let first = watch.elapsed_nanos();
        assert!(watch.elapsed_nanos() >= first);
    }
}
