//! Exposition: Prometheus text format 0.0.4 and a JSON mirror.
//!
//! Both renderers work from [`Registry::snapshot`], so they never hold the
//! registry lock while formatting and never perturb recorders.  JSON is
//! hand-rolled (no `serde_json` in the offline build): the emitted values are
//! metric names, label strings, and integers, so escaping is the only
//! subtlety.

use std::fmt::Write as _;

use crate::metric::Histogram;
use crate::registry::{FamilySnapshot, Registry, SeriesValue};

impl Registry {
    /// Renders every family in the Prometheus text exposition format 0.0.4:
    /// `# HELP` / `# TYPE` headers, one sample per line, histograms as
    /// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for family in self.snapshot() {
            render_family_prometheus(&mut out, &family);
        }
        out
    }

    /// Renders every family as a JSON array (objects with `name`, `help`,
    /// `type`, and per-series values; histograms carry their buckets).
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, family) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_family_json(&mut out, family);
        }
        out.push(']');
        out
    }
}

fn render_family_prometheus(out: &mut String, family: &FamilySnapshot) {
    let name = &family.name;
    let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
    let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
    for series in &family.series {
        let labels = prometheus_labels(&series.labels, &[]);
        match &series.value {
            SeriesValue::Counter(v) => {
                let _ = writeln!(out, "{name}{labels} {v}");
            }
            SeriesValue::Gauge(v) => {
                let _ = writeln!(out, "{name}{labels} {v}");
            }
            SeriesValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, bucket) in h.buckets.iter().enumerate() {
                    cumulative += bucket;
                    let le = match Histogram::bucket_upper_bound(i) {
                        Some(bound) => scaled_bound(bound, family.scale),
                        None => "+Inf".to_owned(),
                    };
                    let with_le = prometheus_labels(&series.labels, &[("le", &le)]);
                    let _ = writeln!(out, "{name}_bucket{with_le} {cumulative}");
                }
                let sum = scaled_sum(h.sum, family.scale);
                let _ = writeln!(out, "{name}_sum{labels} {sum}");
                let _ = writeln!(out, "{name}_count{labels} {}", h.count);
            }
        }
    }
}

fn render_family_json(out: &mut String, family: &FamilySnapshot) {
    out.push('{');
    let _ = write!(out, "\"name\":{}", json_string(&family.name));
    let _ = write!(out, ",\"help\":{}", json_string(&family.help));
    let _ = write!(out, ",\"type\":\"{}\"", family.kind.as_str());
    out.push_str(",\"series\":[");
    for (i, series) in family.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"labels\":{");
        for (j, (k, v)) in series.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_string(v));
        }
        out.push('}');
        match &series.value {
            SeriesValue::Counter(v) => {
                let _ = write!(out, ",\"value\":{v}");
            }
            SeriesValue::Gauge(v) => {
                let _ = write!(out, ",\"value\":{v}");
            }
            SeriesValue::Histogram(h) => {
                let _ = write!(
                    out,
                    ",\"count\":{},\"sum\":{}",
                    h.count,
                    scaled_sum(h.sum, family.scale)
                );
                out.push_str(",\"buckets\":[");
                let mut cumulative = 0u64;
                for (j, bucket) in h.buckets.iter().enumerate() {
                    cumulative += bucket;
                    if j > 0 {
                        out.push(',');
                    }
                    let le = match Histogram::bucket_upper_bound(j) {
                        Some(bound) => json_string(&scaled_bound(bound, family.scale)),
                        None => json_string("+Inf"),
                    };
                    let _ = write!(out, "{{\"le\":{le},\"count\":{cumulative}}}");
                }
                out.push(']');
            }
        }
        out.push('}');
    }
    out.push_str("]}");
}

/// Formats a label set as `{k="v",...}` (empty string for no labels), with
/// `extra` pairs appended — used for the `le` of histogram buckets.
fn prometheus_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// A histogram bucket bound in exposition units.  Raw-unit histograms
/// (scale 1) render integers; scaled ones (latencies) render decimal floats —
/// Rust's `f64` Display is the shortest round-trip decimal and never
/// scientific, which the text format requires.
fn scaled_bound(bound: u64, scale: f64) -> String {
    if scale == 1.0 {
        bound.to_string()
    } else {
        format!("{}", bound as f64 * scale)
    }
}

fn scaled_sum(sum: u64, scale: f64) -> String {
    if scale == 1.0 {
        sum.to_string()
    } else {
        format!("{}", sum as f64 * scale)
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HISTOGRAM_BUCKETS;

    #[test]
    fn prometheus_counter_and_gauge_lines() {
        let reg = Registry::new();
        reg.counter("requests_total", "Requests served.", &[("mode", "full")]).add(3);
        reg.gauge("workers", "Busy workers.", &[]).set(2);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP requests_total Requests served."));
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{mode=\"full\"} 3"));
        assert!(text.contains("# TYPE workers gauge"));
        assert!(text.contains("\nworkers 2\n"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        let reg = Registry::new();
        let h = reg.histogram("rows", "Rows.", &[]);
        h.record(1);
        h.record(3);
        h.record(u64::MAX);
        let text = reg.render_prometheus();
        assert!(text.contains("rows_bucket{le=\"1\"} 1"));
        assert!(text.contains("rows_bucket{le=\"4\"} 2"));
        assert!(text.contains("rows_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("rows_count 3"));
    }

    #[test]
    fn latency_bounds_render_in_seconds() {
        let reg = Registry::new();
        let h = reg.latency_histogram("lat_seconds", "Latency.", &[]);
        h.record(1_000); // 1 µs
        let text = reg.render_prometheus();
        // 2^10 ns = 1024 ns = 0.000001024 s is the first bucket holding it.
        assert!(text.contains("lat_seconds_bucket{le=\"0.000001024\"} 1"), "{text}");
        assert!(text.contains("lat_seconds_sum 0.000001"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let reg = Registry::new();
        reg.counter("c_total", "c \"quoted\"", &[("k", "v")]).inc();
        reg.histogram("h", "h", &[]).record(2);
        let json = reg.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"c_total\""));
        assert!(json.contains("\"help\":\"c \\\"quoted\\\"\""));
        assert!(json.contains("\"labels\":{\"k\":\"v\"}"));
        assert!(json.contains("\"buckets\":["));
        // One le entry per bucket, including +Inf.
        assert_eq!(json.matches("\"le\":").count(), HISTOGRAM_BUCKETS);
    }
}
