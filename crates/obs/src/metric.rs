//! The three metric primitives: counters, gauges, and log2-bucket histograms.
//!
//! All recording operations are single relaxed atomic read-modify-writes:
//! wait-free, no locks, no allocation.  That makes them safe to call from any
//! context — including while holding an unrelated `MutexGuard` (the epoch
//! manager records gauges inside its protocol lock) — and cheap enough to
//! leave enabled in release builds.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of histogram buckets.  Bucket `i < HISTOGRAM_BUCKETS - 1` counts
/// values `v` with `v <= 2^i`; the last bucket is the `+Inf` overflow.  Forty
/// buckets cover 1 ns – ~9 minutes for latencies recorded in nanoseconds and
/// 1 – ~5·10¹¹ for row counts, both comfortably beyond what the engine
/// produces.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing event count.
///
/// Recording is one relaxed `fetch_add`; reads are racy-but-atomic snapshots,
/// which is all a monitoring surface needs.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A level that can move in both directions (queue depth, pinned readers,
/// busy workers).
#[derive(Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (lock-free high-water mark).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// A fixed-bucket log2 histogram.
///
/// [`Histogram::record`] classifies the value into its power-of-two bucket
/// with a `leading_zeros` and performs three relaxed `fetch_add`s (bucket,
/// count, sum) — lock-free and constant-time regardless of the value.
/// Latency histograms record nanoseconds; the registry remembers a per-family
/// scale (`1e-9` for latencies) so exposition renders bucket bounds and sums
/// in seconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A point-in-time copy of a histogram's atomics.
///
/// Buckets are *non-cumulative* per-bucket counts (exposition accumulates
/// them into Prometheus' cumulative `le` series).  The snapshot is read
/// bucket-by-bucket while writers keep recording, so totals are only
/// guaranteed exact when writers are quiescent (which every test arranges by
/// joining its threads first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values, in raw (unscaled) units.
    pub sum: u64,
    /// Per-bucket (non-cumulative) counts, `HISTOGRAM_BUCKETS` of them.
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// A histogram with all buckets at zero.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index for a value: the smallest `i` with `v <= 2^i`,
    /// clamped to the overflow bucket.
    pub fn bucket_index(v: u64) -> usize {
        let index = match v {
            0 | 1 => 0,
            v => 64 - (v - 1).leading_zeros() as usize,
        };
        index.min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i` in raw units, or `None` for
    /// the `+Inf` overflow bucket.
    pub fn bucket_upper_bound(i: usize) -> Option<u64> {
        (i < HISTOGRAM_BUCKETS - 1).then(|| 1u64 << i)
    }

    /// Records one value.  Lock-free: three relaxed atomic adds.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values in raw units.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies the current bucket counts out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways_and_keeps_max() {
        let g = Gauge::new();
        g.set(5);
        g.add(3);
        g.sub(6);
        assert_eq!(g.get(), 2);
        g.set_max(7);
        g.set_max(4);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 20), 20);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_indices() {
        assert_eq!(Histogram::bucket_upper_bound(0), Some(1));
        assert_eq!(Histogram::bucket_upper_bound(10), Some(1024));
        assert_eq!(Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let bound = Histogram::bucket_upper_bound(i).unwrap();
            assert_eq!(Histogram::bucket_index(bound), i, "bound of bucket {i} maps back");
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1010);
        assert_eq!(snap.buckets[0], 2); // 0, 1
        assert_eq!(snap.buckets[1], 1); // 2
        assert_eq!(snap.buckets[2], 2); // 3, 4
        assert_eq!(snap.buckets[10], 1); // 1000 <= 1024
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }
}
