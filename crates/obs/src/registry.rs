//! The metric registry: get-or-create families, snapshot, and the process
//! global.
//!
//! The registry's internal `Mutex` is taken only by registration
//! ([`Registry::counter`] and friends) and by exposition
//! ([`Registry::snapshot`]).  Hot paths hold `Arc` handles obtained once at
//! startup and record through the lock-free primitives in [`crate::metric`];
//! [`Registry::lock_acquisitions`] counts every acquisition of the internal
//! lock so tests can prove that recording never touches it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};

/// What a metric family measures, in Prometheus' vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// A level that moves both ways.
    Gauge,
    /// A log2-bucket value distribution.
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword for the exposition format.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One labelled series' handle inside a family.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A metric family: one name, one kind, many label sets.
#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Multiplier applied to histogram bucket bounds and sums at exposition
    /// time (1e-9 turns recorded nanoseconds into rendered seconds).
    scale: f64,
    series: BTreeMap<Vec<(String, String)>, Handle>,
}

/// A point-in-time copy of one labelled series.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// The label set, sorted by label name.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SeriesValue,
}

/// The value of one series at snapshot time.
#[derive(Debug, Clone)]
pub enum SeriesValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current level.
    Gauge(i64),
    /// A histogram's buckets, count, and raw-unit sum.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of one metric family.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// The family name (`tpath_engine_queries_total`).
    pub name: String,
    /// The `# HELP` text.
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Exposition multiplier for histogram bounds and sums.
    pub scale: f64,
    /// Every labelled series of the family, sorted by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// Get-or-create metric families keyed by name, handing out shared handles
/// whose recording operations never take a lock.
#[derive(Debug)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
    lock_acquisitions: AtomicU64,
}

impl Registry {
    /// An empty registry.  `const` so the process [`global`] needs no
    /// once-initialization.
    pub const fn new() -> Self {
        Registry { families: Mutex::new(BTreeMap::new()), lock_acquisitions: AtomicU64::new(0) }
    }

    /// Locks the family map, recovering from poison (a panicking registrant
    /// cannot leave the map structurally broken: every mutation is a single
    /// insert) and counting the acquisition.
    fn lock(&self) -> MutexGuard<'_, BTreeMap<&'static str, Family>> {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.families.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Number of times the registry's internal mutex has been acquired.
    /// Registration and exposition lock; recording through handles must not —
    /// the lock-freedom tests assert this count stays flat across recording.
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions.load(Ordering::Relaxed)
    }

    fn handle(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        scale: f64,
        labels: &[(&str, &str)],
    ) -> Handle {
        let mut key: Vec<(String, String)> =
            labels.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect();
        key.sort();
        let mut families = self.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            scale,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric family `{name}` registered as {:?} and requested as {kind:?}",
            family.kind
        );
        family
            .series
            .entry(key)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Handle::Counter(Arc::new(Counter::new())),
                MetricKind::Gauge => Handle::Gauge(Arc::new(Gauge::new())),
                MetricKind::Histogram => Handle::Histogram(Arc::new(Histogram::new())),
            })
            .clone()
    }

    /// Returns the counter `name{labels}`, creating it at zero on first use.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        match self.handle(name, help, MetricKind::Counter, 1.0, labels) {
            Handle::Counter(c) => c,
            Handle::Gauge(_) | Handle::Histogram(_) => unreachable!("kind checked in handle()"),
        }
    }

    /// Returns the gauge `name{labels}`, creating it at zero on first use.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        match self.handle(name, help, MetricKind::Gauge, 1.0, labels) {
            Handle::Gauge(g) => g,
            Handle::Counter(_) | Handle::Histogram(_) => unreachable!("kind checked in handle()"),
        }
    }

    /// Returns the histogram `name{labels}` with raw-unit buckets (bucket `i`
    /// counts values `<= 2^i`), creating it empty on first use.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.scaled_histogram(name, help, 1.0, labels)
    }

    /// Returns the histogram `name{labels}` that records *nanoseconds* and
    /// renders bounds and sums in seconds.  This is the target type for
    /// [`crate::Span`] timers.
    pub fn latency_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.scaled_histogram(name, help, 1e-9, labels)
    }

    fn scaled_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        scale: f64,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.handle(name, help, MetricKind::Histogram, scale, labels) {
            Handle::Histogram(h) => h,
            Handle::Counter(_) | Handle::Gauge(_) => unreachable!("kind checked in handle()"),
        }
    }

    /// Copies every family out.  Values are read series-by-series while
    /// writers keep recording, so cross-series totals are exact only when
    /// writers are quiescent.
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        let families = self.lock();
        families
            .iter()
            .map(|(name, family)| FamilySnapshot {
                name: (*name).to_owned(),
                help: family.help.to_owned(),
                kind: family.kind,
                scale: family.scale,
                series: family
                    .series
                    .iter()
                    .map(|(labels, handle)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match handle {
                            Handle::Counter(c) => SeriesValue::Counter(c.get()),
                            Handle::Gauge(g) => SeriesValue::Gauge(g.get()),
                            Handle::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// The process-wide registry.  Engine, live, and server telemetry all record
/// here; `tpath-serve` exposes it through `Request::Metrics` and `tpath-perf`
/// snapshots it into the report.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_series() {
        let reg = Registry::new();
        let a = reg.counter("events_total", "events", &[("kind", "x")]);
        let b = reg.counter("events_total", "events", &[("kind", "x")]);
        let other = reg.counter("events_total", "events", &[("kind", "y")]);
        a.inc();
        b.inc();
        other.add(5);
        assert_eq!(a.get(), 2);
        assert_eq!(other.get(), 5);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = Registry::new();
        let a = reg.gauge("depth", "queue depth", &[("pool", "p"), ("shard", "0")]);
        let b = reg.gauge("depth", "queue depth", &[("shard", "0"), ("pool", "p")]);
        a.set(7);
        assert_eq!(b.get(), 7);
    }

    #[test]
    fn snapshot_sees_all_kinds() {
        let reg = Registry::new();
        reg.counter("c_total", "c", &[]).add(3);
        reg.gauge("g", "g", &[]).set(-2);
        reg.latency_histogram("h_seconds", "h", &[]).record(1500);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 3);
        let names: Vec<&str> = snap.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["c_total", "g", "h_seconds"]);
        assert!(matches!(snap[0].series[0].value, SeriesValue::Counter(3)));
        assert!(matches!(snap[1].series[0].value, SeriesValue::Gauge(-2)));
        match &snap[2].series[0].value {
            SeriesValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 1500);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert!((snap[2].scale - 1e-9).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "registered as Counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("m", "m", &[]);
        let _ = reg.gauge("m", "m", &[]);
    }

    #[test]
    fn recording_does_not_lock() {
        let reg = Registry::new();
        let c = reg.counter("c_total", "c", &[]);
        let g = reg.gauge("g", "g", &[]);
        let h = reg.histogram("h", "h", &[]);
        let before = reg.lock_acquisitions();
        for i in 0..1000 {
            c.inc();
            g.set(i);
            h.record(i as u64);
        }
        assert_eq!(reg.lock_acquisitions(), before, "recording must not touch the registry lock");
    }
}
