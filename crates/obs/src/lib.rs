//! Observability primitives for the tpath workspace.
//!
//! The engine, live maintenance, and the query server all need the same three
//! things: counters for events, gauges for levels, and histograms for
//! latencies — recorded on hot paths that must not slow down and read back by
//! an exposition endpoint that must not perturb the writers.  This crate
//! provides exactly that, on `std` alone (the build environment has no
//! registry access, so there is no `prometheus`/`metrics`/`tracing`
//! dependency to lean on):
//!
//! * [`Counter`] / [`Gauge`] — single atomics, relaxed ordering, wait-free.
//! * [`Histogram`] — fixed log2 buckets ([`HISTOGRAM_BUCKETS`] of them), each
//!   an atomic; [`Histogram::record`] is lock-free and allocation-free.
//! * [`Span`] — an RAII timer guard ([`Span::enter`]) that records its
//!   elapsed time into a histogram on drop.  Span families are labelled with
//!   slash-separated paths (`query/step12`), so per-query span trees aggregate
//!   into one histogram per tree node.  A disabled span
//!   ([`Span::enter`] with `None`, or [`Span::noop`]) never reads the clock
//!   and records nothing.
//! * [`Stopwatch`] — the only sanctioned wall-clock read outside this crate's
//!   span machinery.  Engine and live code must time through [`Span`] or
//!   [`Stopwatch`]; the `raw-timing-outside-obs` workspace lint denies bare
//!   `Instant::now()` there.
//! * [`Registry`] — get-or-create metric families keyed by name + labels.
//!   Registration takes a `Mutex` (once per handle, at startup); *recording*
//!   through the returned `Arc` handles never does — a guarantee pinned by
//!   [`Registry::lock_acquisitions`] and the lock-freedom tests.  Exposition
//!   is [`Registry::render_prometheus`] (text format 0.0.4) and
//!   [`Registry::render_json`].
//!
//! The process-wide registry every crate records into is [`global`]; local
//! [`Registry`] values exist for tests and tools.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod metric;
mod registry;
mod render;
mod span;

pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{global, FamilySnapshot, MetricKind, Registry, SeriesSnapshot, SeriesValue};
pub use span::{duration_nanos, Span, Stopwatch};
