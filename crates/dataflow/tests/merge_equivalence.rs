//! Property tests pinning the sorted/merge operators to their hash-based
//! counterparts: on arbitrary keyed interval relations,
//!
//! * `interval_merge_join` produces the same multiset of joined rows as
//!   `interval_hash_join`;
//! * the k-way-merge / linear-scan coalesce (`coalesce_kway`, `coalesce_sorted`)
//!   produces exactly the same output as `coalesce`.

use proptest::prelude::*;

use dataflow::sorted::{coalesce_kway, coalesce_sorted, kway_merge_dedup, SortedRelation};
use dataflow::{coalesce, interval_hash_join, interval_merge_join, interval_merge_join_gallop};
use tgraph::Interval;

const MAX_TIME: u64 = 15;
const MAX_KEY: u32 = 5;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Row {
    key: u32,
    interval: Interval,
    id: u32,
}

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0..=MAX_TIME, 0..=4u64)
        .prop_map(|(start, len)| Interval::of(start, (start + len).min(MAX_TIME)))
}

fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec((0..=MAX_KEY, interval_strategy()), 0..24).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(id, (key, interval))| Row { key, interval, id: id as u32 })
            .collect()
    })
}

fn keyed_intervals_strategy() -> impl Strategy<Value = Vec<(u32, Interval)>> {
    prop::collection::vec((0..=MAX_KEY, interval_strategy()), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interval_merge_join_equals_interval_hash_join(
        mut left in rows_strategy(),
        mut right in rows_strategy(),
    ) {
        // The merge join requires key-sorted inputs; the hash join accepts any order
        // but produces the same multiset either way.
        left.sort();
        right.sort();
        let mut merged: Vec<(u32, u32, Interval)> =
            interval_merge_join(&left, &right, |l| l.key, |r| r.key, |l| l.interval, |r| r.interval)
                .into_iter()
                .map(|(l, r, iv)| (l.id, r.id, iv))
                .collect();
        let mut hashed: Vec<(u32, u32, Interval)> =
            interval_hash_join(&left, &right, |l| l.key, |r| r.key, |l| l.interval, |r| r.interval)
                .into_iter()
                .map(|(l, r, iv)| (l.id, r.id, iv))
                .collect();
        merged.sort_unstable();
        hashed.sort_unstable();
        prop_assert_eq!(merged, hashed);
    }

    #[test]
    fn galloping_merge_join_equals_the_linear_merge_join(
        mut left in rows_strategy(),
        mut right in rows_strategy(),
    ) {
        // The galloping group seeks must not change the join output in any way —
        // same rows, same order (both joins emit left-major key-group order).
        left.sort();
        right.sort();
        let plain: Vec<(u32, u32, Interval)> =
            interval_merge_join(&left, &right, |l| l.key, |r| r.key, |l| l.interval, |r| r.interval)
                .into_iter()
                .map(|(l, r, iv)| (l.id, r.id, iv))
                .collect();
        let galloped: Vec<(u32, u32, Interval)> = interval_merge_join_gallop(
            &left, &right, |l| l.key, |r| r.key, |l| l.interval, |r| r.interval,
        )
        .into_iter()
        .map(|(l, r, iv)| (l.id, r.id, iv))
        .collect();
        prop_assert_eq!(plain, galloped);
    }

    #[test]
    fn sorted_relation_join_equals_hash_join(
        left in rows_strategy(),
        right in rows_strategy(),
    ) {
        let left_rel = SortedRelation::from_rows(
            left.iter().map(|r| (r.key, r.interval, r.id)).collect(),
        );
        let right_rel = SortedRelation::from_rows(
            right.iter().map(|r| (r.key, r.interval, r.id)).collect(),
        );
        let joined = left_rel.interval_merge_join(&right_rel);
        // The output relation maintains the key/start sort invariant…
        prop_assert!(SortedRelation::from_sorted(joined.rows().to_vec()).is_some());
        // …and carries the same multiset of (left id, right id, interval) matches.
        let mut merged: Vec<(u32, u32, Interval)> =
            joined.iter().map(|(_, iv, (l, r))| (**l, **r, *iv)).collect();
        let mut hashed: Vec<(u32, u32, Interval)> =
            interval_hash_join(&left, &right, |l| l.key, |r| r.key, |l| l.interval, |r| r.interval)
                .into_iter()
                .map(|(l, r, iv)| (l.id, r.id, iv))
                .collect();
        merged.sort_unstable();
        hashed.sort_unstable();
        prop_assert_eq!(merged, hashed);
    }

    #[test]
    fn sorted_and_kway_coalesce_equal_hash_coalesce(
        rows in keyed_intervals_strategy(),
        cut in 0..100usize,
    ) {
        let reference = coalesce(rows.clone());

        let mut sorted = rows.clone();
        sorted.sort_unstable();
        prop_assert_eq!(coalesce_sorted(sorted.clone()), reference.clone());

        // Split the sorted rows into two sorted runs at an arbitrary point and merge
        // them back through the k-way path.
        let cut = cut.min(sorted.len());
        let (a, b) = sorted.split_at(cut);
        prop_assert_eq!(coalesce_kway(vec![a.to_vec(), b.to_vec()]), reference.clone());

        // Interleaved runs (round-robin) must coalesce identically too.
        let evens: Vec<_> = sorted.iter().copied().step_by(2).collect();
        let odds: Vec<_> = sorted.iter().copied().skip(1).step_by(2).collect();
        prop_assert_eq!(coalesce_kway(vec![evens, odds]), reference);
    }

    #[test]
    fn semi_naive_delta_rounds_agree_across_join_strategies(
        mut edges in rows_strategy(),
        seeds in prop::collection::vec((0..=MAX_KEY, interval_strategy()), 1..8),
    ) {
        // The closure operator's semi-naive loop joins a frontier of
        // (key, interval) deltas against an adjacency relation once per round,
        // coalescing the results between rounds.  Both physical join strategies must
        // produce the same canonical frontier at every round.  `Row.id` doubles as
        // the destination key, wrapped into the key range.
        edges.sort();
        let canonical = |joined: Vec<(u32, Interval)>| -> Vec<(u32, Interval)> {
            let mut grouped: std::collections::BTreeMap<u32, Vec<Interval>> = Default::default();
            for (key, iv) in joined {
                grouped.entry(key).or_default().push(iv);
            }
            grouped
                .into_iter()
                .flat_map(|(key, ivs)| {
                    tgraph::IntervalSet::from_intervals(ivs)
                        .intervals()
                        .iter()
                        .map(move |&iv| (key, iv))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let destination = |r: &Row| r.id % (MAX_KEY + 1);

        let mut frontier = canonical(seeds);
        for round in 0..3 {
            let hashed: Vec<(u32, Interval)> = interval_hash_join(
                &frontier,
                &edges,
                |f| f.0,
                |r| r.key,
                |f| f.1,
                |r| r.interval,
            )
            .into_iter()
            .map(|(_, r, iv)| (destination(r), iv))
            .collect();
            // The frontier is canonical, hence key-sorted — exactly what the merge
            // path requires.
            let merged: Vec<(u32, Interval)> = interval_merge_join(
                &frontier,
                &edges,
                |f| f.0 as usize,
                |r| r.key as usize,
                |f| f.1,
                |r| r.interval,
            )
            .into_iter()
            .map(|(_, r, iv)| (destination(r), iv))
            .collect();
            let next = canonical(hashed);
            prop_assert_eq!(&next, &canonical(merged), "round {} diverged", round);
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
    }

    #[test]
    fn kway_merge_dedup_equals_sort_dedup(runs in prop::collection::vec(
        prop::collection::vec(0..50u32, 0..12), 0..5,
    )) {
        let mut sorted_runs = runs.clone();
        for run in &mut sorted_runs {
            run.sort_unstable();
        }
        let merged = kway_merge_dedup(sorted_runs);
        let mut reference: Vec<u32> = runs.into_iter().flatten().collect();
        reference.sort_unstable();
        reference.dedup();
        prop_assert_eq!(merged, reference);
    }
}
