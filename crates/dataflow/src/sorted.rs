//! A sorted columnar representation of interval relations, plus the k-way-merge
//! machinery that exploits it.
//!
//! [`SortedRelation`] keeps `(key, interval, payload)` rows sorted by join key, then
//! interval start — the invariant under which joins degrade to linear merges
//! ([`mod@crate::operators::merge_join`]) and temporal coalescing degrades to a single
//! scan ([`coalesce_sorted`]).  [`kway_merge`] combines several sorted runs (for
//! example the per-chunk outputs of the parallel executor) into one sorted run with a
//! binary heap instead of re-sorting the concatenation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tgraph::Interval;

/// An interval relation whose rows are sorted by `(key, interval.start, interval.end)`.
///
/// The sort invariant is established on construction and maintained by every
/// operation, so consumers can rely on it without re-checking.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SortedRelation<K, V> {
    rows: Vec<(K, Interval, V)>,
}

impl<K: Ord, V> SortedRelation<K, V> {
    /// Builds a sorted relation from arbitrary rows, sorting them.
    pub fn from_rows(mut rows: Vec<(K, Interval, V)>) -> Self {
        rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        SortedRelation { rows }
    }

    /// Wraps rows that are already sorted; returns `None` if they are not.
    pub fn from_sorted(rows: Vec<(K, Interval, V)>) -> Option<Self> {
        let sorted = rows.windows(2).all(|w| (&w[0].0, w[0].1) <= (&w[1].0, w[1].1));
        sorted.then_some(SortedRelation { rows })
    }

    /// The empty relation.
    pub fn empty() -> Self {
        SortedRelation { rows: Vec::new() }
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrows the rows (sorted by key, then interval start).
    pub fn rows(&self) -> &[(K, Interval, V)] {
        &self.rows
    }

    /// Consumes the relation and returns its rows.
    pub fn into_rows(self) -> Vec<(K, Interval, V)> {
        self.rows
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, (K, Interval, V)> {
        self.rows.iter()
    }

    /// Merges two sorted relations into one, preserving the sort invariant with a
    /// linear two-way merge (no re-sort).
    pub fn union_merge(self, other: SortedRelation<K, V>) -> Self {
        let mut out = Vec::with_capacity(self.rows.len() + other.rows.len());
        let (mut a, mut b) = (self.rows.into_iter(), other.rows.into_iter());
        let (mut next_a, mut next_b) = (a.next(), b.next());
        loop {
            match (next_a, next_b) {
                (Some(ra), Some(rb)) => {
                    if (&ra.0, ra.1) <= (&rb.0, rb.1) {
                        out.push(ra);
                        next_a = a.next();
                        next_b = Some(rb);
                    } else {
                        out.push(rb);
                        next_a = Some(ra);
                        next_b = b.next();
                    }
                }
                (Some(ra), None) => {
                    out.push(ra);
                    out.extend(a);
                    break;
                }
                (None, Some(rb)) => {
                    out.push(rb);
                    out.extend(b);
                    break;
                }
                (None, None) => break,
            }
        }
        SortedRelation { rows: out }
    }
}

impl<K: Ord + Clone, V> SortedRelation<K, V> {
    /// Temporally-aligned merge join with another sorted relation: pairs rows with
    /// equal keys whose intervals intersect; the output row carries the intersection
    /// and both payloads, and the output relation is again key/start-sorted.
    pub fn interval_merge_join<'a, W>(
        &'a self,
        other: &'a SortedRelation<K, W>,
    ) -> SortedRelation<K, (&'a V, &'a W)> {
        let joined = crate::operators::merge_join::interval_merge_join(
            &self.rows,
            &other.rows,
            |l| l.0.clone(),
            |r| r.0.clone(),
            |l| l.1,
            |r| r.1,
        );
        let mut rows: Vec<(K, Interval, (&V, &W))> =
            joined.into_iter().map(|(l, r, iv)| (l.0.clone(), iv, (&l.2, &r.2))).collect();
        // The join emits keys in order, but the intersections within one key group are
        // not necessarily start-sorted; restore the invariant.
        rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        SortedRelation { rows }
    }

    /// Coalesces the `(key, interval)` projection of the relation in a single linear
    /// pass (see [`coalesce_sorted`]).
    pub fn coalesce_keys(&self) -> Vec<(K, Interval)> {
        coalesce_sorted(self.rows.iter().map(|(k, iv, _)| (k.clone(), *iv)))
    }
}

/// Merges sorted runs into one sorted sequence with a binary heap.
///
/// Each run must be sorted (`Ord` on the element type); ties across runs are broken by
/// run index, making the merge deterministic.  This is the order-exploiting rewrite of
/// `concatenate + sort` used to combine per-worker outputs.
pub fn kway_merge<T: Ord>(runs: Vec<Vec<T>>) -> Vec<T> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<T>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<(T, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (run, iter) in iters.iter_mut().enumerate() {
        if let Some(head) = iter.next() {
            heap.push(Reverse((head, run)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((value, run))) = heap.pop() {
        out.push(value);
        if let Some(next) = iters[run].next() {
            heap.push(Reverse((next, run)));
        }
    }
    out
}

/// [`kway_merge`] with duplicate elimination: equal elements (within or across runs)
/// are emitted once.
pub fn kway_merge_dedup<T: Ord>(runs: Vec<Vec<T>>) -> Vec<T> {
    let mut out = kway_merge(runs);
    out.dedup();
    out
}

/// Coalesces `(key, interval)` rows that are sorted by `(key, interval.start)` in one
/// linear pass: rows with the same key whose intervals overlap or meet are merged into
/// maximal intervals.  Produces the same output as
/// [`crate::operators::coalesce::coalesce`] but without hashing, by exploiting the
/// sort order.
pub fn coalesce_sorted<K, I>(rows: I) -> Vec<(K, Interval)>
where
    K: Ord + Clone,
    I: IntoIterator<Item = (K, Interval)>,
{
    let mut out: Vec<(K, Interval)> = Vec::new();
    let mut current: Option<(K, Interval)> = None;
    for (key, interval) in rows {
        if let Some((cur_key, cur_iv)) = &mut current {
            debug_assert!(
                (&*cur_key, cur_iv.start()) <= (&key, interval.start()),
                "coalesce_sorted: input rows not sorted by (key, start)"
            );
            // Overlapping or meeting: start ≤ end + 1.  `saturating_add` is exact here
            // because an interval ending at Time::MAX leaves no representable gap.
            if *cur_key == key && interval.start() <= cur_iv.end().saturating_add(1) {
                *cur_iv = Interval::of(cur_iv.start(), cur_iv.end().max(interval.end()));
                continue;
            }
            out.push((cur_key.clone(), *cur_iv));
        }
        current = Some((key, interval));
    }
    if let Some(last) = current {
        out.push(last);
    }
    out
}

/// Coalesces several key/start-sorted runs of `(key, interval)` rows by k-way-merging
/// them and coalescing the merged stream in the same pass.  The sorted, multi-run
/// rewrite of [`crate::operators::coalesce::coalesce`].
pub fn coalesce_kway<K: Ord + Clone>(runs: Vec<Vec<(K, Interval)>>) -> Vec<(K, Interval)> {
    coalesce_sorted(kway_merge(runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::coalesce::coalesce;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    #[test]
    fn construction_sorts_and_validates() {
        let rel = SortedRelation::from_rows(vec![
            ("b", iv(1, 2), 0u8),
            ("a", iv(5, 9), 1),
            ("a", iv(0, 3), 2),
        ]);
        let keys: Vec<(&str, Interval)> = rel.iter().map(|(k, i, _)| (*k, *i)).collect();
        assert_eq!(keys, vec![("a", iv(0, 3)), ("a", iv(5, 9)), ("b", iv(1, 2))]);
        assert!(SortedRelation::from_sorted(rel.clone().into_rows()).is_some());
        assert!(
            SortedRelation::from_sorted(vec![("b", iv(1, 2), 0u8), ("a", iv(0, 3), 1)]).is_none()
        );
        assert!(SortedRelation::<u32, ()>::empty().is_empty());
    }

    #[test]
    fn union_merge_preserves_the_invariant() {
        let a = SortedRelation::from_rows(vec![(1u32, iv(0, 1), "a"), (3, iv(0, 1), "c")]);
        let b = SortedRelation::from_rows(vec![(2u32, iv(0, 1), "b"), (3, iv(0, 0), "d")]);
        let merged = a.union_merge(b);
        assert_eq!(merged.len(), 4);
        assert!(SortedRelation::from_sorted(merged.into_rows()).is_some());
    }

    #[test]
    fn interval_merge_join_on_sorted_relations() {
        let people = SortedRelation::from_rows(vec![
            (10u32, iv(1, 9), "ann"),
            (20, iv(1, 4), "bob-low"),
            (20, iv(5, 9), "bob-high"),
        ]);
        let meets =
            SortedRelation::from_rows(vec![(20u32, iv(3, 3), "cafe"), (20, iv(5, 6), "park")]);
        let joined = people.interval_merge_join(&meets);
        let rows: Vec<(u32, Interval, (&str, &str))> =
            joined.iter().map(|(k, i, (p, m))| (*k, *i, (**p, **m))).collect();
        assert_eq!(
            rows,
            vec![(20, iv(3, 3), ("bob-low", "cafe")), (20, iv(5, 6), ("bob-high", "park")),]
        );
    }

    #[test]
    fn kway_merge_combines_runs_in_order() {
        let runs = vec![vec![1u32, 4, 9], vec![2, 2, 5], vec![], vec![3, 9]];
        assert_eq!(kway_merge(runs.clone()), vec![1, 2, 2, 3, 4, 5, 9, 9]);
        assert_eq!(kway_merge_dedup(runs), vec![1, 2, 3, 4, 5, 9]);
        assert_eq!(kway_merge::<u32>(vec![]), Vec::<u32>::new());
    }

    #[test]
    fn coalesce_sorted_matches_hash_coalesce() {
        let rows = vec![
            ("a", iv(1, 3)),
            ("a", iv(4, 6)),
            ("a", iv(9, 9)),
            ("b", iv(2, 5)),
            ("b", iv(4, 7)),
        ];
        assert_eq!(coalesce_sorted(rows.clone()), coalesce(rows));
        assert_eq!(coalesce_sorted(Vec::<(&str, Interval)>::new()), vec![]);
    }

    #[test]
    fn coalesce_kway_merges_across_runs() {
        let runs =
            vec![vec![("a", iv(1, 3)), ("b", iv(0, 0))], vec![("a", iv(4, 6)), ("b", iv(2, 4))]];
        let mut flat: Vec<(&str, Interval)> = runs.iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(coalesce_kway(runs), coalesce(flat));
    }
}
