//! A thin, lazy-ish relational wrapper used to compose dataflow pipelines.
//!
//! [`Relation`] owns a vector of rows and exposes the classic dataflow operators
//! (filter, map, flat-map, union, distinct) plus parallel variants that split the
//! relation into chunks and process them on worker threads.  The engine crate builds
//! its select–project–join plans on top of these operators, in the same spirit as the
//! paper's use of Itertools and Rayon.

use crate::parallel::{par_chunk_flat_map, Parallelism};

/// An in-memory relation: an ordered multiset of rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation<T> {
    rows: Vec<T>,
}

impl<T> Relation<T> {
    /// Creates a relation from a vector of rows.
    pub fn new(rows: Vec<T>) -> Self {
        Relation { rows }
    }

    /// The empty relation.
    pub fn empty() -> Self {
        Relation { rows: Vec::new() }
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrows the rows.
    pub fn rows(&self) -> &[T] {
        &self.rows
    }

    /// Consumes the relation and returns its rows.
    pub fn into_rows(self) -> Vec<T> {
        self.rows
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.rows.iter()
    }

    /// Keeps only the rows satisfying the predicate.
    pub fn filter<F: FnMut(&T) -> bool>(self, predicate: F) -> Self {
        Relation { rows: self.rows.into_iter().filter(predicate).collect() }
    }

    /// Applies a projection / transformation to every row.
    pub fn map<U, F: FnMut(T) -> U>(self, op: F) -> Relation<U> {
        Relation { rows: self.rows.into_iter().map(op).collect() }
    }

    /// Applies a one-to-many transformation to every row.
    pub fn flat_map<U, I, F>(self, op: F) -> Relation<U>
    where
        I: IntoIterator<Item = U>,
        F: FnMut(T) -> I,
    {
        Relation { rows: self.rows.into_iter().flat_map(op).collect() }
    }

    /// Appends the rows of another relation (bag union).
    pub fn union(mut self, other: Relation<T>) -> Self {
        self.rows.extend(other.rows);
        self
    }

    /// Removes duplicate rows (set semantics); sorts the relation as a side effect.
    pub fn distinct(mut self) -> Self
    where
        T: Ord,
    {
        self.rows.sort_unstable();
        self.rows.dedup();
        self
    }

    /// Parallel filter over chunks of the relation.
    pub fn par_filter<F>(self, parallelism: Parallelism, predicate: F) -> Self
    where
        T: Send + Sync + Clone,
        F: Fn(&T) -> bool + Sync,
    {
        let rows = par_chunk_flat_map(&self.rows, parallelism, |chunk| {
            chunk.iter().filter(|r| predicate(r)).cloned().collect()
        });
        Relation { rows }
    }

    /// Parallel one-to-many transformation over chunks of the relation.
    pub fn par_flat_map<U, F>(self, parallelism: Parallelism, op: F) -> Relation<U>
    where
        T: Send + Sync,
        U: Send,
        F: Fn(&T) -> Vec<U> + Sync,
    {
        let rows = par_chunk_flat_map(&self.rows, parallelism, |chunk| {
            chunk.iter().flat_map(&op).collect()
        });
        Relation { rows }
    }
}

impl<T> FromIterator<T> for Relation<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Relation { rows: iter.into_iter().collect() }
    }
}

impl<T> IntoIterator for Relation<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operators_compose() {
        let r: Relation<u32> = (0..10).collect();
        let result =
            r.filter(|x| x % 2 == 0).map(|x| x * 10).flat_map(|x| vec![x, x + 1]).distinct();
        assert_eq!(result.rows(), &[0, 1, 20, 21, 40, 41, 60, 61, 80, 81]);
    }

    #[test]
    fn union_and_distinct() {
        let a: Relation<u32> = vec![1, 2, 3].into_iter().collect();
        let b: Relation<u32> = vec![3, 4].into_iter().collect();
        let u = a.union(b);
        assert_eq!(u.len(), 5);
        assert_eq!(u.distinct().rows(), &[1, 2, 3, 4]);
    }

    #[test]
    fn parallel_operators_match_sequential() {
        let r: Relation<u64> = (0..500).collect();
        let seq = r.clone().filter(|x| x % 3 == 0).flat_map(|x| vec![x, x * 2]);
        let par = r
            .clone()
            .par_filter(Parallelism::with_threads(4), |x| x % 3 == 0)
            .par_flat_map(Parallelism::with_threads(4), |x| vec![*x, x * 2]);
        assert_eq!(seq.rows(), par.rows());
    }

    #[test]
    fn empty_relation_behaviour() {
        let e: Relation<u32> = Relation::empty();
        assert!(e.is_empty());
        assert_eq!(e.clone().distinct().len(), 0);
        assert!(e.iter().next().is_none());
    }
}
