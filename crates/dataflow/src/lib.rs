//! # dataflow — interval-relational dataflow substrate
//!
//! The small dataflow layer the TRPQ engine (Section VI of the paper) is built on:
//! an in-memory [`Relation`] with the classic operators (filter, map, flat-map, union,
//! distinct), temporally-aligned joins in two physical flavours — hash
//! ([`operators::join`]) and sort-merge over key-sorted inputs
//! ([`mod@operators::merge_join`]) — selected through a [`JoinStrategy`], a sorted
//! columnar interval representation with k-way-merge coalescing ([`sorted`]), temporal
//! coalescing ([`mod@operators::coalesce`]), and a chunked parallel executor on
//! `crossbeam` scoped threads ([`parallel`]) standing in for the paper's use of
//! Itertools + Rayon.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod operators;
pub mod parallel;
pub mod relation;
pub mod sorted;
pub mod strategy;

pub use operators::{
    coalesce, hash_join, interval_hash_join, interval_merge_join, interval_merge_join_gallop,
    is_key_sorted, merge_join, merge_join_gallop, point_count,
};
pub use parallel::{par_chunk_flat_map, par_filter, par_flat_map, par_map, Parallelism};
pub use relation::Relation;
pub use sorted::{coalesce_kway, coalesce_sorted, kway_merge, kway_merge_dedup, SortedRelation};
pub use strategy::{JoinStrategy, ResolvedJoin};
