//! # dataflow — interval-relational dataflow substrate
//!
//! The small dataflow layer the TRPQ engine (Section VI of the paper) is built on:
//! an in-memory [`Relation`] with the classic operators (filter, map, flat-map, union,
//! distinct), temporally-aligned hash joins ([`operators::join`]), temporal coalescing
//! ([`operators::coalesce`]), and a chunked parallel executor on `crossbeam` scoped
//! threads ([`parallel`]) standing in for the paper's use of Itertools + Rayon.

#![warn(missing_docs)]

pub mod operators;
pub mod parallel;
pub mod relation;

pub use operators::{coalesce, hash_join, interval_hash_join, point_count};
pub use parallel::{par_chunk_flat_map, par_filter, par_flat_map, par_map, Parallelism};
pub use relation::Relation;
