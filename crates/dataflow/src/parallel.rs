//! A chunked data-parallel executor built on `crossbeam` scoped threads.
//!
//! The paper's implementation uses Rayon as "an interface over dataflow operators";
//! this module provides the same programming model — split an input collection into
//! chunks, apply an operator to every chunk on its own worker thread, and concatenate
//! the per-chunk outputs — with an explicit, configurable degree of parallelism so the
//! Figure 3 experiment (execution time vs. number of cores) can sweep it.

use std::num::NonZeroUsize;

/// Degree of parallelism for the chunked operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Runs everything on the calling thread.
    pub fn sequential() -> Self {
        Parallelism { threads: NonZeroUsize::new(1).unwrap() }
    }

    /// Uses exactly `threads` worker threads (values of zero are clamped to one).
    pub fn with_threads(threads: usize) -> Self {
        Parallelism { threads: NonZeroUsize::new(threads.max(1)).unwrap() }
    }

    /// Uses one worker per available CPU core.
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        Parallelism::with_threads(threads)
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::available()
    }
}

/// Applies `op` to roughly equal chunks of `items` in parallel and concatenates the
/// results in chunk order.  The operator receives each chunk as a slice.
///
/// Produces exactly `min(threads, items.len())` chunks whose sizes differ by at most
/// one, so every worker gets work and no worker gets a disproportionate share (a
/// ceiling-division chunk size can leave workers idle — e.g. 9 items over 4 threads
/// used to become three chunks of 3 with one thread unused).
pub fn par_chunk_flat_map<T, U, F>(items: &[T], parallelism: Parallelism, op: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> Vec<U> + Sync,
{
    let threads = parallelism.threads().min(items.len());
    if threads <= 1 {
        return op(items);
    }
    let chunks = balanced_chunks(items, threads);
    let mut results: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    crossbeam::scope(|scope| {
        let handles: Vec<_> = chunks.iter().map(|chunk| scope.spawn(|_| op(chunk))).collect();
        for handle in handles {
            results.push(handle.join().expect("dataflow worker thread panicked"));
        }
    })
    .expect("crossbeam scope failed");
    let total: usize = results.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for r in results {
        out.extend(r);
    }
    out
}

/// Splits `items` into exactly `chunks` non-empty slices whose lengths differ by at
/// most one, preserving order.  Requires `1 <= chunks <= items.len()`.
fn balanced_chunks<T>(items: &[T], chunks: usize) -> Vec<&[T]> {
    debug_assert!(chunks >= 1 && chunks <= items.len());
    let base = items.len() / chunks;
    let remainder = items.len() % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for index in 0..chunks {
        let size = base + usize::from(index < remainder);
        out.push(&items[start..start + size]);
        start += size;
    }
    debug_assert_eq!(start, items.len());
    out
}

/// Parallel map over the items of a slice, preserving order.
pub fn par_map<T, U, F>(items: &[T], parallelism: Parallelism, op: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_chunk_flat_map(items, parallelism, |chunk| chunk.iter().map(&op).collect())
}

/// Parallel flat-map over the items of a slice, preserving order.
pub fn par_flat_map<T, U, F>(items: &[T], parallelism: Parallelism, op: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Vec<U> + Sync,
{
    par_chunk_flat_map(items, parallelism, |chunk| chunk.iter().flat_map(&op).collect())
}

/// Parallel filter over the items of a slice, preserving order.
pub fn par_filter<T, F>(items: &[T], parallelism: Parallelism, predicate: F) -> Vec<T>
where
    T: Sync + Send + Clone,
    F: Fn(&T) -> bool + Sync,
{
    par_chunk_flat_map(items, parallelism, |chunk| {
        chunk.iter().filter(|item| predicate(item)).cloned().collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_configuration() {
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert_eq!(Parallelism::with_threads(0).threads(), 1);
        assert_eq!(Parallelism::with_threads(7).threads(), 7);
        assert!(Parallelism::available().threads() >= 1);
    }

    #[test]
    fn chunked_flat_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let doubled = par_chunk_flat_map(&items, Parallelism::with_threads(threads), |chunk| {
                chunk.iter().map(|x| x * 2).collect()
            });
            assert_eq!(
                doubled,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_filter_and_flat_map() {
        let items: Vec<u64> = (0..100).collect();
        let p = Parallelism::with_threads(4);
        assert_eq!(par_map(&items, p, |x| x + 1)[99], 100);
        assert_eq!(par_filter(&items, p, |x| x % 2 == 0).len(), 50);
        let expanded = par_flat_map(&items, p, |x| vec![*x, *x]);
        assert_eq!(expanded.len(), 200);
        assert_eq!(&expanded[0..4], &[0, 0, 1, 1]);
    }

    /// Records the chunk sizes `par_chunk_flat_map` actually hands to workers.
    fn observed_chunk_sizes(len: usize, threads: usize) -> Vec<usize> {
        let items: Vec<u64> = (0..len as u64).collect();
        let sizes = std::sync::Mutex::new(Vec::new());
        let result = par_chunk_flat_map(&items, Parallelism::with_threads(threads), |chunk| {
            sizes.lock().unwrap().push(chunk.len());
            chunk.to_vec()
        });
        assert_eq!(result, items, "len={len} threads={threads}");
        let mut sizes = sizes.into_inner().unwrap();
        sizes.sort_unstable();
        sizes
    }

    #[test]
    fn chunks_are_balanced_and_use_every_worker() {
        // Regression: ceiling-division sizing used to produce fewer chunks than
        // workers (9 items / 4 threads -> three chunks of 3) and, in the worst case,
        // one oversized chunk for everything.
        assert_eq!(observed_chunk_sizes(9, 4), vec![2, 2, 2, 3]);
        assert_eq!(observed_chunk_sizes(5, 4), vec![1, 1, 1, 2]);
        assert_eq!(observed_chunk_sizes(1000, 3), vec![333, 333, 334]);
        // Small inputs: one chunk of one item per worker that can be fed.
        assert_eq!(observed_chunk_sizes(3, 16), vec![1, 1, 1]);
        for (len, threads) in [(2, 2), (7, 7), (64, 5), (100, 64)] {
            let sizes = observed_chunk_sizes(len, threads);
            assert_eq!(sizes.len(), len.min(threads), "len={len} threads={threads}");
            assert_eq!(sizes.iter().sum::<usize>(), len);
            assert!(sizes.last().unwrap() - sizes.first().unwrap() <= 1);
            assert!(sizes.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, Parallelism::with_threads(8), |x| *x).is_empty());
        let single = vec![42u64];
        assert_eq!(par_map(&single, Parallelism::with_threads(8), |x| *x), vec![42]);
        // More threads than items.
        let few: Vec<u64> = (0..3).collect();
        assert_eq!(par_map(&few, Parallelism::with_threads(16), |x| x * 10), vec![0, 10, 20]);
    }
}
