//! A chunked data-parallel executor built on `crossbeam` scoped threads.
//!
//! The paper's implementation uses Rayon as "an interface over dataflow operators";
//! this module provides the same programming model — split an input collection into
//! chunks, apply an operator to every chunk on its own worker thread, and concatenate
//! the per-chunk outputs — with an explicit, configurable degree of parallelism so the
//! Figure 3 experiment (execution time vs. number of cores) can sweep it.

use std::num::NonZeroUsize;

/// Degree of parallelism for the chunked operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Runs everything on the calling thread.
    pub fn sequential() -> Self {
        Parallelism { threads: NonZeroUsize::new(1).unwrap() }
    }

    /// Uses exactly `threads` worker threads (values of zero are clamped to one).
    pub fn with_threads(threads: usize) -> Self {
        Parallelism { threads: NonZeroUsize::new(threads.max(1)).unwrap() }
    }

    /// Uses one worker per available CPU core.
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        Parallelism::with_threads(threads)
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::available()
    }
}

/// Applies `op` to roughly equal chunks of `items` in parallel and concatenates the
/// results in chunk order.  The operator receives each chunk as a slice.
pub fn par_chunk_flat_map<T, U, F>(items: &[T], parallelism: Parallelism, op: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> Vec<U> + Sync,
{
    let threads = parallelism.threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return op(items);
    }
    let chunk_size = items.len().div_ceil(threads);
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    let mut results: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    crossbeam::scope(|scope| {
        let handles: Vec<_> = chunks.iter().map(|chunk| scope.spawn(|_| op(chunk))).collect();
        for handle in handles {
            results.push(handle.join().expect("dataflow worker thread panicked"));
        }
    })
    .expect("crossbeam scope failed");
    let total: usize = results.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for r in results {
        out.extend(r);
    }
    out
}

/// Parallel map over the items of a slice, preserving order.
pub fn par_map<T, U, F>(items: &[T], parallelism: Parallelism, op: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_chunk_flat_map(items, parallelism, |chunk| chunk.iter().map(&op).collect())
}

/// Parallel flat-map over the items of a slice, preserving order.
pub fn par_flat_map<T, U, F>(items: &[T], parallelism: Parallelism, op: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Vec<U> + Sync,
{
    par_chunk_flat_map(items, parallelism, |chunk| chunk.iter().flat_map(&op).collect())
}

/// Parallel filter over the items of a slice, preserving order.
pub fn par_filter<T, F>(items: &[T], parallelism: Parallelism, predicate: F) -> Vec<T>
where
    T: Sync + Send + Clone,
    F: Fn(&T) -> bool + Sync,
{
    par_chunk_flat_map(items, parallelism, |chunk| {
        chunk.iter().filter(|item| predicate(item)).cloned().collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_configuration() {
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert_eq!(Parallelism::with_threads(0).threads(), 1);
        assert_eq!(Parallelism::with_threads(7).threads(), 7);
        assert!(Parallelism::available().threads() >= 1);
    }

    #[test]
    fn chunked_flat_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let doubled = par_chunk_flat_map(&items, Parallelism::with_threads(threads), |chunk| {
                chunk.iter().map(|x| x * 2).collect()
            });
            assert_eq!(
                doubled,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_filter_and_flat_map() {
        let items: Vec<u64> = (0..100).collect();
        let p = Parallelism::with_threads(4);
        assert_eq!(par_map(&items, p, |x| x + 1)[99], 100);
        assert_eq!(par_filter(&items, p, |x| x % 2 == 0).len(), 50);
        let expanded = par_flat_map(&items, p, |x| vec![*x, *x]);
        assert_eq!(expanded.len(), 200);
        assert_eq!(&expanded[0..4], &[0, 0, 1, 1]);
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, Parallelism::with_threads(8), |x| *x).is_empty());
        let single = vec![42u64];
        assert_eq!(par_map(&single, Parallelism::with_threads(8), |x| *x), vec![42]);
        // More threads than items.
        let few: Vec<u64> = (0..3).collect();
        assert_eq!(par_map(&few, Parallelism::with_threads(16), |x| x * 10), vec![0, 10, 20]);
    }
}
