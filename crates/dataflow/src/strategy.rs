//! Join-strategy selection: the engine knob that picks between the hash-based and the
//! sort-merge-based implementations of temporally-aligned joins.
//!
//! The paper's engine (Section VI) evaluates structural navigation with in-memory
//! joins over interval relations.  Two physical implementations are available:
//!
//! * **Hash** — probe a hash (or precomputed per-key) index of one side with the rows
//!   of the other ([`crate::operators::join`]).  Insensitive to input order.
//! * **Merge** — a linear sort-merge pass over two inputs that are both sorted by the
//!   join key ([`mod@crate::operators::merge_join`]).  Cache-friendly and allocation-free
//!   on the probe path, but only correct on key-sorted inputs.
//!
//! [`JoinStrategy::Auto`] resolves the choice per join from the actual sortedness of
//! the inputs: merge when both sides are already key-sorted (as the engine's seed-row
//! expansion naturally produces), hash otherwise.

use std::fmt;
use std::str::FromStr;

/// How temporally-aligned joins should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JoinStrategy {
    /// Always probe a hash / per-key index.
    Hash,
    /// Always sort-merge; inputs that are not key-sorted are sorted first.
    Merge,
    /// Pick per join: merge when the inputs are already key-sorted, hash otherwise.
    #[default]
    Auto,
}

/// The concrete algorithm chosen for one join after [`JoinStrategy::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedJoin {
    /// Probe a hash / per-key index.
    Hash,
    /// Linear merge over key-sorted inputs.
    Merge,
}

impl JoinStrategy {
    /// Resolves the strategy for one join, given whether the join inputs are already
    /// sorted by the join key.
    ///
    /// `Hash` and `Merge` are unconditional; `Auto` picks merge exactly when the
    /// inputs are sorted (so no extra sort is ever paid on the auto path).
    pub fn resolve(self, inputs_key_sorted: bool) -> ResolvedJoin {
        match self {
            JoinStrategy::Hash => ResolvedJoin::Hash,
            JoinStrategy::Merge => ResolvedJoin::Merge,
            JoinStrategy::Auto => {
                if inputs_key_sorted {
                    ResolvedJoin::Merge
                } else {
                    ResolvedJoin::Hash
                }
            }
        }
    }

    /// The lower-case name used in benchmark output and environment variables.
    pub fn name(self) -> &'static str {
        match self {
            JoinStrategy::Hash => "hash",
            JoinStrategy::Merge => "merge",
            JoinStrategy::Auto => "auto",
        }
    }

    /// All strategies, in the order benchmark matrices sweep them.
    pub const ALL: [JoinStrategy; 3] =
        [JoinStrategy::Hash, JoinStrategy::Merge, JoinStrategy::Auto];
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for JoinStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hash" => Ok(JoinStrategy::Hash),
            "merge" => Ok(JoinStrategy::Merge),
            "auto" => Ok(JoinStrategy::Auto),
            other => Err(format!("unknown join strategy {other:?} (expected hash|merge|auto)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_honours_sortedness_only_for_auto() {
        assert_eq!(JoinStrategy::Hash.resolve(true), ResolvedJoin::Hash);
        assert_eq!(JoinStrategy::Merge.resolve(false), ResolvedJoin::Merge);
        assert_eq!(JoinStrategy::Auto.resolve(true), ResolvedJoin::Merge);
        assert_eq!(JoinStrategy::Auto.resolve(false), ResolvedJoin::Hash);
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for strategy in JoinStrategy::ALL {
            assert_eq!(strategy.name().parse::<JoinStrategy>().unwrap(), strategy);
        }
        assert_eq!("MERGE".parse::<JoinStrategy>().unwrap(), JoinStrategy::Merge);
        assert!("nested-loop".parse::<JoinStrategy>().is_err());
        assert_eq!(JoinStrategy::default(), JoinStrategy::Auto);
        assert_eq!(JoinStrategy::Auto.to_string(), "auto");
    }
}
