//! Join-strategy selection: the engine knob that picks between the hash-based and the
//! sort-merge-based implementations of temporally-aligned joins.
//!
//! The paper's engine (Section VI) evaluates structural navigation with in-memory
//! joins over interval relations.  Two physical implementations are available:
//!
//! * **Hash** — probe a hash (or precomputed per-key) index of one side with the rows
//!   of the other ([`crate::operators::join`]).  Insensitive to input order.
//! * **Merge** — a linear sort-merge pass over two inputs that are both sorted by the
//!   join key ([`mod@crate::operators::merge_join`]).  Cache-friendly and allocation-free
//!   on the probe path, but only correct on key-sorted inputs.
//!
//! [`JoinStrategy::Auto`] resolves the choice per join from the actual sortedness of
//! the inputs: merge when both sides are already key-sorted (as the engine's seed-row
//! expansion naturally produces), hash otherwise.

use std::fmt;
use std::str::FromStr;

/// How temporally-aligned joins should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JoinStrategy {
    /// Always probe a hash / per-key index.
    Hash,
    /// Always sort-merge; inputs that are not key-sorted are sorted first.
    Merge,
    /// Pick per join: merge when the inputs are already key-sorted, hash otherwise.
    #[default]
    Auto,
}

/// The concrete algorithm chosen for one join after [`JoinStrategy::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedJoin {
    /// Probe a hash / per-key index.
    Hash,
    /// Linear merge over key-sorted inputs.
    Merge,
}

/// The `Auto` cost crossover: merge is chosen only when the probe side carries at
/// least one row per this many indexed rows.  A merge pass streams the key-sorted
/// permutation (galloping over unmatched groups), so a tiny probe batch against a
/// long permutation is better served by the precomputed per-key hash indexes; a
/// probe batch of comparable size amortises the stream and wins on locality.
pub const AUTO_MERGE_PROBE_RATIO: usize = 8;

impl JoinStrategy {
    /// Resolves the strategy for one join, given whether the join inputs are already
    /// sorted by the join key.
    ///
    /// `Hash` and `Merge` are unconditional; `Auto` picks merge exactly when the
    /// inputs are sorted (so no extra sort is ever paid on the auto path).  Callers
    /// that know the input cardinalities should prefer
    /// [`JoinStrategy::resolve_with_hint`], which adds a cost guard on top of the
    /// sortedness rule.
    pub fn resolve(self, inputs_key_sorted: bool) -> ResolvedJoin {
        match self {
            JoinStrategy::Hash => ResolvedJoin::Hash,
            JoinStrategy::Merge => ResolvedJoin::Merge,
            JoinStrategy::Auto => {
                if inputs_key_sorted {
                    ResolvedJoin::Merge
                } else {
                    ResolvedJoin::Hash
                }
            }
        }
    }

    /// Resolves the strategy for one join from input sortedness *and* a simple cost
    /// heuristic: probe-side row count versus indexed-side row count.
    ///
    /// `Hash` and `Merge` stay unconditional.  `Auto` picks merge only when the
    /// inputs are key-sorted (merging unsorted inputs would pay a sort) **and** the
    /// probe side is not vanishingly small relative to the indexed side —
    /// `probe_rows × `[`AUTO_MERGE_PROBE_RATIO`]` ≥ index_rows` — since a handful of
    /// probes against a long permutation resolve faster through the per-key hash
    /// indexes than through a merge stream.
    pub fn resolve_with_hint(
        self,
        inputs_key_sorted: bool,
        probe_rows: usize,
        index_rows: usize,
    ) -> ResolvedJoin {
        match self {
            JoinStrategy::Hash => ResolvedJoin::Hash,
            JoinStrategy::Merge => ResolvedJoin::Merge,
            JoinStrategy::Auto => {
                let worth_streaming =
                    probe_rows.saturating_mul(AUTO_MERGE_PROBE_RATIO) >= index_rows;
                if inputs_key_sorted && worth_streaming {
                    ResolvedJoin::Merge
                } else {
                    ResolvedJoin::Hash
                }
            }
        }
    }

    /// The lower-case name used in benchmark output and environment variables.
    pub fn name(self) -> &'static str {
        match self {
            JoinStrategy::Hash => "hash",
            JoinStrategy::Merge => "merge",
            JoinStrategy::Auto => "auto",
        }
    }

    /// All strategies, in the order benchmark matrices sweep them.
    pub const ALL: [JoinStrategy; 3] =
        [JoinStrategy::Hash, JoinStrategy::Merge, JoinStrategy::Auto];
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for JoinStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hash" => Ok(JoinStrategy::Hash),
            "merge" => Ok(JoinStrategy::Merge),
            "auto" => Ok(JoinStrategy::Auto),
            other => Err(format!("unknown join strategy {other:?} (expected hash|merge|auto)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_honours_sortedness_only_for_auto() {
        assert_eq!(JoinStrategy::Hash.resolve(true), ResolvedJoin::Hash);
        assert_eq!(JoinStrategy::Merge.resolve(false), ResolvedJoin::Merge);
        assert_eq!(JoinStrategy::Auto.resolve(true), ResolvedJoin::Merge);
        assert_eq!(JoinStrategy::Auto.resolve(false), ResolvedJoin::Hash);
    }

    #[test]
    fn cost_hint_pins_the_auto_crossover() {
        // Pinned strategies ignore the hint entirely.
        assert_eq!(JoinStrategy::Hash.resolve_with_hint(true, 1_000, 1), ResolvedJoin::Hash);
        assert_eq!(JoinStrategy::Merge.resolve_with_hint(false, 1, 1_000), ResolvedJoin::Merge);
        // Auto never merges unsorted inputs, however favourable the cardinalities.
        assert_eq!(JoinStrategy::Auto.resolve_with_hint(false, 1_000, 1), ResolvedJoin::Hash);
        // The crossover: merge exactly when probe × ratio reaches the index size.
        let ratio = AUTO_MERGE_PROBE_RATIO;
        assert_eq!(
            JoinStrategy::Auto.resolve_with_hint(true, 100, 100 * ratio),
            ResolvedJoin::Merge
        );
        assert_eq!(
            JoinStrategy::Auto.resolve_with_hint(true, 100, 100 * ratio + 1),
            ResolvedJoin::Hash
        );
        // Equal-sized sides always merge; a huge probe side over a tiny index too.
        assert_eq!(JoinStrategy::Auto.resolve_with_hint(true, 500, 500), ResolvedJoin::Merge);
        assert_eq!(JoinStrategy::Auto.resolve_with_hint(true, usize::MAX, 10), ResolvedJoin::Merge);
        // Empty probe batches degrade to hash (nothing to stream for).
        assert_eq!(JoinStrategy::Auto.resolve_with_hint(true, 0, 10), ResolvedJoin::Hash);
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for strategy in JoinStrategy::ALL {
            assert_eq!(strategy.name().parse::<JoinStrategy>().unwrap(), strategy);
        }
        assert_eq!("MERGE".parse::<JoinStrategy>().unwrap(), JoinStrategy::Merge);
        assert!("nested-loop".parse::<JoinStrategy>().is_err());
        assert_eq!(JoinStrategy::default(), JoinStrategy::Auto);
        assert_eq!(JoinStrategy::Auto.to_string(), "auto");
    }
}
