//! Hash joins with interval-based temporal alignment.
//!
//! The engine of Section VI evaluates structural navigation with "in-memory hash-join
//! that uses interval-based reasoning to identify temporally-aligned matches": two
//! rows join when their keys are equal *and* their validity intervals intersect, and
//! the output row is valid over the intersection of the two intervals.

use std::collections::HashMap;
use std::hash::Hash;

use tgraph::Interval;

/// Plain equi hash join: returns every pair of left and right rows with equal keys.
pub fn hash_join<'a, L, R, K, FL, FR>(
    left: &'a [L],
    right: &'a [R],
    left_key: FL,
    right_key: FR,
) -> Vec<(&'a L, &'a R)>
where
    K: Eq + Hash,
    FL: Fn(&L) -> K,
    FR: Fn(&R) -> K,
{
    // Build on the smaller side to keep the hash table small.
    if left.len() <= right.len() {
        let mut index: HashMap<K, Vec<&L>> = HashMap::with_capacity(left.len());
        for l in left {
            index.entry(left_key(l)).or_default().push(l);
        }
        let mut out = Vec::new();
        for r in right {
            if let Some(matches) = index.get(&right_key(r)) {
                out.extend(matches.iter().map(|l| (*l, r)));
            }
        }
        out
    } else {
        let mut index: HashMap<K, Vec<&R>> = HashMap::with_capacity(right.len());
        for r in right {
            index.entry(right_key(r)).or_default().push(r);
        }
        let mut out = Vec::new();
        for l in left {
            if let Some(matches) = index.get(&left_key(l)) {
                out.extend(matches.iter().map(|r| (l, *r)));
            }
        }
        out
    }
}

/// Temporally-aligned hash join: joins rows with equal keys whose validity intervals
/// intersect, producing the intersection as the validity interval of the output row.
pub fn interval_hash_join<'a, L, R, K, FL, FR, IL, IR>(
    left: &'a [L],
    right: &'a [R],
    left_key: FL,
    right_key: FR,
    left_interval: IL,
    right_interval: IR,
) -> Vec<(&'a L, &'a R, Interval)>
where
    K: Eq + Hash,
    FL: Fn(&L) -> K,
    FR: Fn(&R) -> K,
    IL: Fn(&L) -> Interval,
    IR: Fn(&R) -> Interval,
{
    hash_join(left, right, left_key, right_key)
        .into_iter()
        .filter_map(|(l, r)| left_interval(l).intersect(&right_interval(r)).map(|iv| (l, r, iv)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Row {
        key: u32,
        interval: Interval,
        payload: &'static str,
    }

    fn row(key: u32, a: u64, b: u64, payload: &'static str) -> Row {
        Row { key, interval: Interval::of(a, b), payload }
    }

    #[test]
    fn equi_join_matches_keys_from_either_build_side() {
        let left = vec![row(1, 0, 5, "l1"), row(2, 0, 5, "l2"), row(2, 6, 9, "l2b")];
        let right = vec![row(2, 0, 9, "r2"), row(3, 0, 9, "r3")];
        let result = hash_join(&left, &right, |l| l.key, |r| r.key);
        assert_eq!(result.len(), 2);
        assert!(result.iter().all(|(l, r)| l.key == r.key));
        // Swap sides so the other branch (build on right) is exercised.
        let result2 = hash_join(&right, &left, |l| l.key, |r| r.key);
        assert_eq!(result2.len(), 2);
    }

    #[test]
    fn interval_join_intersects_validity() {
        // Mirrors the paper's Q5 example: x meets y, and the binding is valid only
        // while both the edge and the endpoints are valid.
        let people =
            vec![row(10, 1, 9, "ann"), row(20, 1, 4, "bob-low"), row(20, 5, 9, "bob-high")];
        let meets = vec![row(20, 3, 3, "cafe"), row(20, 5, 6, "park")];
        let joined = interval_hash_join(
            &people,
            &meets,
            |p| p.key,
            |m| m.key,
            |p| p.interval,
            |m| m.interval,
        );
        let described: Vec<(&str, &str, Interval)> =
            joined.iter().map(|(p, m, iv)| (p.payload, m.payload, *iv)).collect();
        assert_eq!(
            described,
            vec![("bob-low", "cafe", Interval::of(3, 3)), ("bob-high", "park", Interval::of(5, 6)),]
        );
    }

    #[test]
    fn disjoint_intervals_do_not_join() {
        let left = vec![row(1, 0, 2, "l")];
        let right = vec![row(1, 3, 5, "r")];
        assert!(interval_hash_join(
            &left,
            &right,
            |l| l.key,
            |r| r.key,
            |l| l.interval,
            |r| r.interval
        )
        .is_empty());
    }
}
