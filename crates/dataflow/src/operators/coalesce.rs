//! Temporal coalescing of keyed interval rows.
//!
//! Point-based temporal semantics requires value-equivalent, temporally adjacent rows
//! to be stored as a single row with the merged interval; this operator restores that
//! invariant after joins and unions, mirroring the "temporally coalesced" result
//! tables of Section VI.

use tgraph::Interval;

use crate::sorted::coalesce_sorted;

/// Coalesces `(key, interval)` rows: rows with the same key whose intervals overlap or
/// meet are merged into maximal intervals.  The output is sorted by key and interval.
///
/// Implemented as sort + one linear coalescing pass; inputs that are already sorted by
/// `(key, interval.start)` can skip the sort by calling
/// [`coalesce_sorted`] directly, and several sorted
/// runs can be combined with [`crate::sorted::coalesce_kway`].
pub fn coalesce<K>(mut rows: Vec<(K, Interval)>) -> Vec<(K, Interval)>
where
    K: Ord + Clone,
{
    rows.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    coalesce_sorted(rows)
}

/// The total number of time points covered by a set of keyed interval rows,
/// counting each `(key, time point)` pair once.
pub fn point_count<K>(rows: &[(K, Interval)]) -> u64
where
    K: Ord + Clone,
{
    coalesce(rows.to_vec()).iter().map(|(_, iv)| iv.num_points()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_adjacent_and_overlapping_rows_per_key() {
        let rows = vec![
            ("a", Interval::of(1, 3)),
            ("a", Interval::of(4, 6)),
            ("a", Interval::of(9, 9)),
            ("b", Interval::of(2, 5)),
            ("b", Interval::of(4, 7)),
        ];
        let coalesced = coalesce(rows);
        assert_eq!(
            coalesced,
            vec![("a", Interval::of(1, 6)), ("a", Interval::of(9, 9)), ("b", Interval::of(2, 7)),]
        );
    }

    #[test]
    fn point_count_deduplicates_overlaps() {
        let rows =
            vec![("a", Interval::of(1, 4)), ("a", Interval::of(3, 6)), ("b", Interval::of(1, 1))];
        assert_eq!(point_count(&rows), 7);
    }

    #[test]
    fn empty_input() {
        let rows: Vec<(&str, Interval)> = Vec::new();
        assert!(coalesce(rows).is_empty());
    }
}
