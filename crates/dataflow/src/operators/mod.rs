//! Relational dataflow operators with temporal awareness.

pub mod coalesce;
pub mod join;
pub mod merge_join;

pub use coalesce::{coalesce, point_count};
pub use join::{hash_join, interval_hash_join};
pub use merge_join::{
    interval_merge_join, interval_merge_join_gallop, is_key_sorted, merge_join, merge_join_gallop,
};
