//! Relational dataflow operators with temporal awareness.

pub mod coalesce;
pub mod join;

pub use coalesce::{coalesce, point_count};
pub use join::{hash_join, interval_hash_join};
