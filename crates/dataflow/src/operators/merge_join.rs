//! Sort-merge joins over key-sorted slices.
//!
//! The merge join is the order-exploiting counterpart of [`crate::operators::join`]:
//! when both inputs are sorted by the join key, a single linear pass pairs up the
//! matching key groups without building a hash table.  The interval variant keeps only
//! temporally-aligned matches, exactly like `interval_hash_join`, and is the engine's
//! `JoinStrategy::Merge` implementation.

use tgraph::Interval;

/// True if `key` is non-decreasing over `items` — the precondition of the merge joins.
pub fn is_key_sorted<T, K, F>(items: &[T], key: F) -> bool
where
    K: Ord,
    F: Fn(&T) -> K,
{
    items.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
}

/// Plain equi merge join: returns every pair of left and right rows with equal keys.
///
/// Both inputs **must** be sorted by their key (checked with a debug assertion); the
/// output is produced in left-major order (left groups in key order, the pairs of one
/// group in right order).  The result multiset is identical to
/// [`crate::operators::join::hash_join`] on the same inputs.
pub fn merge_join<'a, L, R, K, FL, FR>(
    left: &'a [L],
    right: &'a [R],
    left_key: FL,
    right_key: FR,
) -> Vec<(&'a L, &'a R)>
where
    K: Ord,
    FL: Fn(&L) -> K,
    FR: Fn(&R) -> K,
{
    debug_assert!(is_key_sorted(left, &left_key), "merge_join: left input not key-sorted");
    debug_assert!(is_key_sorted(right, &right_key), "merge_join: right input not key-sorted");
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        let lk = left_key(&left[i]);
        let rk = right_key(&right[j]);
        if lk < rk {
            i += 1;
        } else if lk > rk {
            j += 1;
        } else {
            // Delimit the two key groups and emit their cross product.
            let i_end = group_end(left, i, &left_key);
            let j_end = group_end(right, j, &right_key);
            for l in &left[i..i_end] {
                for r in &right[j..j_end] {
                    out.push((l, r));
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out
}

/// Temporally-aligned merge join: joins key-sorted rows with equal keys whose validity
/// intervals intersect, producing the intersection as the validity interval of the
/// output row.  The merge counterpart of
/// [`crate::operators::join::interval_hash_join`].
pub fn interval_merge_join<'a, L, R, K, FL, FR, IL, IR>(
    left: &'a [L],
    right: &'a [R],
    left_key: FL,
    right_key: FR,
    left_interval: IL,
    right_interval: IR,
) -> Vec<(&'a L, &'a R, Interval)>
where
    K: Ord,
    FL: Fn(&L) -> K,
    FR: Fn(&R) -> K,
    IL: Fn(&L) -> Interval,
    IR: Fn(&R) -> Interval,
{
    merge_join(left, right, left_key, right_key)
        .into_iter()
        .filter_map(|(l, r)| left_interval(l).intersect(&right_interval(r)).map(|iv| (l, r, iv)))
        .collect()
}

fn group_end<T, K, F>(items: &[T], start: usize, key: &F) -> usize
where
    K: Ord,
    F: Fn(&T) -> K,
{
    let k = key(&items[start]);
    let mut end = start + 1;
    while end < items.len() && key(&items[end]) == k {
        end += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::join::{hash_join, interval_hash_join};

    #[derive(Debug, PartialEq)]
    struct Row {
        key: u32,
        interval: Interval,
        payload: &'static str,
    }

    fn row(key: u32, a: u64, b: u64, payload: &'static str) -> Row {
        Row { key, interval: Interval::of(a, b), payload }
    }

    #[test]
    fn merge_join_matches_hash_join_on_sorted_inputs() {
        let left =
            vec![row(1, 0, 5, "l1"), row(2, 0, 5, "l2"), row(2, 6, 9, "l2b"), row(4, 0, 9, "l4")];
        let right = vec![row(2, 0, 9, "r2"), row(2, 3, 4, "r2b"), row(3, 0, 9, "r3")];
        let mut merged: Vec<(&'static str, &'static str)> =
            merge_join(&left, &right, |l| l.key, |r| r.key)
                .into_iter()
                .map(|(l, r)| (l.payload, r.payload))
                .collect();
        let mut hashed: Vec<(&'static str, &'static str)> =
            hash_join(&left, &right, |l| l.key, |r| r.key)
                .into_iter()
                .map(|(l, r)| (l.payload, r.payload))
                .collect();
        merged.sort_unstable();
        hashed.sort_unstable();
        assert_eq!(merged, hashed);
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn interval_merge_join_intersects_validity() {
        let people =
            vec![row(10, 1, 9, "ann"), row(20, 1, 4, "bob-low"), row(20, 5, 9, "bob-high")];
        let meets = vec![row(20, 3, 3, "cafe"), row(20, 5, 6, "park")];
        let joined = interval_merge_join(
            &people,
            &meets,
            |p| p.key,
            |m| m.key,
            |p| p.interval,
            |m| m.interval,
        );
        let mut described: Vec<(&str, &str, Interval)> =
            joined.iter().map(|(p, m, iv)| (p.payload, m.payload, *iv)).collect();
        described.sort_unstable();
        let mut expected = interval_hash_join(
            &people,
            &meets,
            |p| p.key,
            |m| m.key,
            |p| p.interval,
            |m| m.interval,
        )
        .into_iter()
        .map(|(p, m, iv)| (p.payload, m.payload, iv))
        .collect::<Vec<_>>();
        expected.sort_unstable();
        assert_eq!(described, expected);
        assert_eq!(
            described,
            vec![("bob-high", "park", Interval::of(5, 6)), ("bob-low", "cafe", Interval::of(3, 3))]
        );
    }

    #[test]
    fn empty_and_disjoint_inputs() {
        let left = vec![row(1, 0, 2, "l")];
        let right: Vec<Row> = Vec::new();
        assert!(merge_join(&left, &right, |l| l.key, |r| r.key).is_empty());
        let right = vec![row(1, 3, 5, "r")];
        // Keys join but the intervals are disjoint.
        assert_eq!(merge_join(&left, &right, |l| l.key, |r| r.key).len(), 1);
        assert!(interval_merge_join(
            &left,
            &right,
            |l| l.key,
            |r| r.key,
            |l| l.interval,
            |r| r.interval
        )
        .is_empty());
    }

    #[test]
    fn sortedness_predicate() {
        assert!(is_key_sorted(&[1, 1, 2, 5], |&x| x));
        assert!(!is_key_sorted(&[1, 3, 2], |&x| x));
        assert!(is_key_sorted::<u32, u32, _>(&[], |&x| x));
    }
}
