//! Sort-merge joins over key-sorted slices.
//!
//! The merge join is the order-exploiting counterpart of [`crate::operators::join`]:
//! when both inputs are sorted by the join key, a single linear pass pairs up the
//! matching key groups without building a hash table.  The interval variant keeps only
//! temporally-aligned matches, exactly like `interval_hash_join`, and is the engine's
//! `JoinStrategy::Merge` implementation.

use tgraph::Interval;

/// True if `key` is non-decreasing over `items` — the precondition of the merge joins.
pub fn is_key_sorted<T, K, F>(items: &[T], key: F) -> bool
where
    K: Ord,
    F: Fn(&T) -> K,
{
    items.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
}

/// Plain equi merge join: returns every pair of left and right rows with equal keys.
///
/// Both inputs **must** be sorted by their key (checked with a debug assertion); the
/// output is produced in left-major order (left groups in key order, the pairs of one
/// group in right order).  The result multiset is identical to
/// [`crate::operators::join::hash_join`] on the same inputs.
pub fn merge_join<'a, L, R, K, FL, FR>(
    left: &'a [L],
    right: &'a [R],
    left_key: FL,
    right_key: FR,
) -> Vec<(&'a L, &'a R)>
where
    K: Ord,
    FL: Fn(&L) -> K,
    FR: Fn(&R) -> K,
{
    debug_assert!(is_key_sorted(left, &left_key), "merge_join: left input not key-sorted");
    debug_assert!(is_key_sorted(right, &right_key), "merge_join: right input not key-sorted");
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        let lk = left_key(&left[i]);
        let rk = right_key(&right[j]);
        if lk < rk {
            i += 1;
        } else if lk > rk {
            j += 1;
        } else {
            // Delimit the two key groups and emit their cross product.
            let i_end = group_end(left, i, &left_key);
            let j_end = group_end(right, j, &right_key);
            for l in &left[i..i_end] {
                for r in &right[j..j_end] {
                    out.push((l, r));
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out
}

/// Temporally-aligned merge join: joins key-sorted rows with equal keys whose validity
/// intervals intersect, producing the intersection as the validity interval of the
/// output row.  The merge counterpart of
/// [`crate::operators::join::interval_hash_join`].
pub fn interval_merge_join<'a, L, R, K, FL, FR, IL, IR>(
    left: &'a [L],
    right: &'a [R],
    left_key: FL,
    right_key: FR,
    left_interval: IL,
    right_interval: IR,
) -> Vec<(&'a L, &'a R, Interval)>
where
    K: Ord,
    FL: Fn(&L) -> K,
    FR: Fn(&R) -> K,
    IL: Fn(&L) -> Interval,
    IR: Fn(&R) -> Interval,
{
    merge_join(left, right, left_key, right_key)
        .into_iter()
        .filter_map(|(l, r)| left_interval(l).intersect(&right_interval(r)).map(|iv| (l, r, iv)))
        .collect()
}

/// Plain equi merge join with *galloping* group seeks: identical output to
/// [`merge_join`], but on a key mismatch the lagging side jumps to the next
/// candidate group with an exponential probe followed by a binary search instead
/// of advancing one row at a time.
///
/// A join that matches only a few key groups of a long key-sorted permutation
/// therefore costs `O(matches + Σ log(jump distance))` rather than
/// `O(|permutation|)` — the merge-path counterpart of probing a hash index,
/// while still streaming both inputs in order.
pub fn merge_join_gallop<'a, L, R, K, FL, FR>(
    left: &'a [L],
    right: &'a [R],
    left_key: FL,
    right_key: FR,
) -> Vec<(&'a L, &'a R)>
where
    K: Ord,
    FL: Fn(&L) -> K,
    FR: Fn(&R) -> K,
{
    debug_assert!(is_key_sorted(left, &left_key), "merge_join_gallop: left input not key-sorted");
    debug_assert!(
        is_key_sorted(right, &right_key),
        "merge_join_gallop: right input not key-sorted"
    );
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        let lk = left_key(&left[i]);
        let rk = right_key(&right[j]);
        if lk < rk {
            i = gallop_to(left, i, &left_key, &rk);
        } else if lk > rk {
            j = gallop_to(right, j, &right_key, &lk);
        } else {
            let i_end = group_end(left, i, &left_key);
            let j_end = group_end(right, j, &right_key);
            for l in &left[i..i_end] {
                for r in &right[j..j_end] {
                    out.push((l, r));
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out
}

/// Temporally-aligned merge join with galloping group seeks: identical output to
/// [`interval_merge_join`], with the seek behaviour of [`merge_join_gallop`].
/// This is what the engine's merge strategy runs against the key-sorted row
/// permutations, so very selective hops stop paying for the whole permutation.
pub fn interval_merge_join_gallop<'a, L, R, K, FL, FR, IL, IR>(
    left: &'a [L],
    right: &'a [R],
    left_key: FL,
    right_key: FR,
    left_interval: IL,
    right_interval: IR,
) -> Vec<(&'a L, &'a R, Interval)>
where
    K: Ord,
    FL: Fn(&L) -> K,
    FR: Fn(&R) -> K,
    IL: Fn(&L) -> Interval,
    IR: Fn(&R) -> Interval,
{
    merge_join_gallop(left, right, left_key, right_key)
        .into_iter()
        .filter_map(|(l, r)| left_interval(l).intersect(&right_interval(r)).map(|iv| (l, r, iv)))
        .collect()
}

/// The first index `>= start` whose key is `>= target`, found by an exponential
/// probe (1, 2, 4, … steps) followed by a binary search of the overshot window —
/// `O(log d)` for a jump of distance `d`.
fn gallop_to<T, K, F>(items: &[T], start: usize, key: &F, target: &K) -> usize
where
    K: Ord,
    F: Fn(&T) -> K,
{
    if start >= items.len() || key(&items[start]) >= *target {
        return start;
    }
    // Invariant: items[lo] < target; items[hi..] is unexplored or >= target.
    let mut step = 1usize;
    let mut lo = start;
    let mut hi = start + step;
    while hi < items.len() && key(&items[hi]) < *target {
        lo = hi;
        step = step.saturating_mul(2);
        hi = lo + step;
    }
    let mut hi = hi.min(items.len());
    let mut next = lo + 1;
    while next < hi {
        let mid = next + (hi - next) / 2;
        if key(&items[mid]) < *target {
            next = mid + 1;
        } else {
            hi = mid;
        }
    }
    next
}

fn group_end<T, K, F>(items: &[T], start: usize, key: &F) -> usize
where
    K: Ord,
    F: Fn(&T) -> K,
{
    let k = key(&items[start]);
    let mut end = start + 1;
    while end < items.len() && key(&items[end]) == k {
        end += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::join::{hash_join, interval_hash_join};

    #[derive(Debug, PartialEq)]
    struct Row {
        key: u32,
        interval: Interval,
        payload: &'static str,
    }

    fn row(key: u32, a: u64, b: u64, payload: &'static str) -> Row {
        Row { key, interval: Interval::of(a, b), payload }
    }

    #[test]
    fn merge_join_matches_hash_join_on_sorted_inputs() {
        let left =
            vec![row(1, 0, 5, "l1"), row(2, 0, 5, "l2"), row(2, 6, 9, "l2b"), row(4, 0, 9, "l4")];
        let right = vec![row(2, 0, 9, "r2"), row(2, 3, 4, "r2b"), row(3, 0, 9, "r3")];
        let mut merged: Vec<(&'static str, &'static str)> =
            merge_join(&left, &right, |l| l.key, |r| r.key)
                .into_iter()
                .map(|(l, r)| (l.payload, r.payload))
                .collect();
        let mut hashed: Vec<(&'static str, &'static str)> =
            hash_join(&left, &right, |l| l.key, |r| r.key)
                .into_iter()
                .map(|(l, r)| (l.payload, r.payload))
                .collect();
        merged.sort_unstable();
        hashed.sort_unstable();
        assert_eq!(merged, hashed);
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn interval_merge_join_intersects_validity() {
        let people =
            vec![row(10, 1, 9, "ann"), row(20, 1, 4, "bob-low"), row(20, 5, 9, "bob-high")];
        let meets = vec![row(20, 3, 3, "cafe"), row(20, 5, 6, "park")];
        let joined = interval_merge_join(
            &people,
            &meets,
            |p| p.key,
            |m| m.key,
            |p| p.interval,
            |m| m.interval,
        );
        let mut described: Vec<(&str, &str, Interval)> =
            joined.iter().map(|(p, m, iv)| (p.payload, m.payload, *iv)).collect();
        described.sort_unstable();
        let mut expected = interval_hash_join(
            &people,
            &meets,
            |p| p.key,
            |m| m.key,
            |p| p.interval,
            |m| m.interval,
        )
        .into_iter()
        .map(|(p, m, iv)| (p.payload, m.payload, iv))
        .collect::<Vec<_>>();
        expected.sort_unstable();
        assert_eq!(described, expected);
        assert_eq!(
            described,
            vec![("bob-high", "park", Interval::of(5, 6)), ("bob-low", "cafe", Interval::of(3, 3))]
        );
    }

    #[test]
    fn empty_and_disjoint_inputs() {
        let left = vec![row(1, 0, 2, "l")];
        let right: Vec<Row> = Vec::new();
        assert!(merge_join(&left, &right, |l| l.key, |r| r.key).is_empty());
        let right = vec![row(1, 3, 5, "r")];
        // Keys join but the intervals are disjoint.
        assert_eq!(merge_join(&left, &right, |l| l.key, |r| r.key).len(), 1);
        assert!(interval_merge_join(
            &left,
            &right,
            |l| l.key,
            |r| r.key,
            |l| l.interval,
            |r| r.interval
        )
        .is_empty());
    }

    #[test]
    fn galloping_join_matches_the_linear_scan() {
        // A few probe keys against a long, many-group "permutation": the gallop
        // must skip the unmatched groups without changing the result.
        let left = vec![row(7, 0, 9, "l7"), row(7, 2, 4, "l7b"), row(900, 0, 9, "l900")];
        let right: Vec<Row> =
            (0..1000u32).map(|k| row(k, (k % 5) as u64, (k % 5 + 3) as u64, "r")).collect();
        let plain: Vec<(u32, u32)> = merge_join(&left, &right, |l| l.key, |r| r.key)
            .into_iter()
            .map(|(l, r)| (l.key, r.key))
            .collect();
        let galloped: Vec<(u32, u32)> = merge_join_gallop(&left, &right, |l| l.key, |r| r.key)
            .into_iter()
            .map(|(l, r)| (l.key, r.key))
            .collect();
        assert_eq!(plain, galloped);
        assert_eq!(galloped.len(), 3);

        let plain_iv = interval_merge_join(
            &left,
            &right,
            |l| l.key,
            |r| r.key,
            |l| l.interval,
            |r| r.interval,
        );
        let galloped_iv = interval_merge_join_gallop(
            &left,
            &right,
            |l| l.key,
            |r| r.key,
            |l| l.interval,
            |r| r.interval,
        );
        assert_eq!(
            plain_iv.iter().map(|(l, r, iv)| (l.key, r.key, *iv)).collect::<Vec<_>>(),
            galloped_iv.iter().map(|(l, r, iv)| (l.key, r.key, *iv)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gallop_seeks_land_on_group_starts() {
        let items: Vec<u32> = vec![1, 1, 3, 3, 3, 8, 9, 9, 12];
        let key = |&x: &u32| x;
        assert_eq!(gallop_to(&items, 0, &key, &1), 0);
        assert_eq!(gallop_to(&items, 0, &key, &2), 2);
        assert_eq!(gallop_to(&items, 0, &key, &3), 2);
        assert_eq!(gallop_to(&items, 1, &key, &9), 6);
        assert_eq!(gallop_to(&items, 0, &key, &12), 8);
        assert_eq!(gallop_to(&items, 0, &key, &13), items.len());
        assert_eq!(gallop_to(&items, 8, &key, &1), 8);
        assert_eq!(gallop_to(&items, 9, &key, &1), 9);
        // Large jumps from every starting offset stay consistent with a scan.
        let long: Vec<u32> = (0..257).map(|i| i / 3).collect();
        for start in 0..long.len() {
            for target in [0u32, 1, 40, 85, 100] {
                let expected =
                    (start..long.len()).find(|&i| long[i] >= target).unwrap_or(long.len());
                assert_eq!(gallop_to(&long, start, &key, &target), expected, "{start} {target}");
            }
        }
    }

    #[test]
    fn sortedness_predicate() {
        assert!(is_key_sorted(&[1, 1, 2, 5], |&x| x));
        assert!(!is_key_sorted(&[1, 3, 2], |&x| x));
        assert!(is_key_sorted::<u32, u32, _>(&[], |&x| x));
    }
}
