//! # tpath — Temporal Regular Path Queries
//!
//! A single-crate facade over the workspace implementing *Temporal Regular Path
//! Queries* (Arenas, Bahamondes, Aghasadeghi, Stoyanovich — ICDE 2022):
//!
//! * [`tgraph`] — temporal property graphs, point-based ([`tgraph::Tpg`]) and
//!   interval-based ([`tgraph::Itpg`]);
//! * [`trpq`] — the `NavL[PC,NOI]` query language: AST, practical `MATCH` syntax,
//!   fragments, complexity, and the paper's reference evaluation algorithms;
//! * [`dataflow`] — the interval-relational operators and the chunked parallel
//!   executor the engine is built on;
//! * [`engine`] — the interval-based three-step query engine of Section VI;
//! * [`live`] — live graphs: streaming ingestion of epoched mutation batches,
//!   incremental maintenance of registered queries, and concurrent serving —
//!   epoch-based MVCC snapshots ([`live::epoch`]) behind a multi-threaded query
//!   server ([`live::serve`]);
//! * [`workload`] — the Figure 1 running example and the synthetic contact-tracing
//!   graphs of the experimental evaluation (bulk and streamed).
//!
//! ```
//! use tpath::engine::{GraphRelations, Query};
//! use tpath::workload::figure1;
//!
//! // Who is at risk? High-risk people who met someone who later tested positive.
//! let graph = GraphRelations::from_itpg(&figure1());
//! let answers = Query::parse(
//!     "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) \
//!      ON contact_tracing",
//! )
//! .unwrap()
//! .run(&graph);
//! assert_eq!(answers.stats().output_rows, 3);
//! ```

pub use dataflow;
pub use engine;
pub use live;
pub use tgraph;
pub use trpq;
pub use workload;
